"""The asyncio SPC query server: routing, shedding, deadlines, drain.

:class:`SPCServer` owns one read-only index and answers ``Q(s, t)``
over a small JSON/HTTP surface:

* ``GET /query?source=S&target=T`` — one query.
* ``POST /query`` with ``{"source": S, "target": T}`` or
  ``{"pairs": [[S, T], ...]}`` — one query or an explicit batch; add
  ``"explain": true`` for the algorithmic counters behind the answer
  (labels scanned, LCA node, batch/queue/scan timings).
* ``GET /health`` — liveness + readiness: 503 once draining **or**
  when the rolling SLO window is degraded.
* ``GET /metrics`` — the server recorder's metrics, content-negotiated:
  JSON snapshot by default, Prometheus text exposition for
  ``Accept: text/plain`` / ``?format=prometheus``.
* ``GET /stats`` — the rolling SLO window (p50/p95/p99, error/shed/
  cache-hit rates, queue depth) plus cache and batcher state.

Answers are ``{"source", "target", "distance", "count"}`` with
``distance: null`` for a disconnected pair — exactly the values
:meth:`SPCIndex.query` returns, just JSON-framed.

**Request correlation:** every request carries a request id — the
inbound ``X-Request-Id`` header when the client sent one, a generated
``<instance>-<counter>`` id otherwise.  The id rides through the
coalescer and cache, is echoed in the ``X-Request-Id`` response
header, and stamps every structured log record
(:class:`repro.obs.logging.RequestLog`: JSON-lines access log plus a
slow-query log past ``slow_query_ms``), so one grep connects a user
report to the exact batch scan that served it.

Three protections keep the server honest under load:

* **Admission control** — once ``queue_high_water`` admitted requests
  are waiting, new ones are shed with 503 + ``Retry-After`` instead of
  growing the queue without bound.
* **Deadlines** — every admitted request races
  ``request_timeout_ms``; losers get 504 and their slot back.
* **Graceful drain** — SIGTERM (or :meth:`SPCServer.shutdown`) stops
  accepting, lets in-flight requests finish within ``drain_grace_s``,
  flushes the coalescer, and only then lets the process exit.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from collections import deque

from repro.exceptions import LiveUpdateError, ReproError
from repro.faults import FaultyIndex
from repro.obs import (
    NULL_RECORDER,
    PROMETHEUS_CONTENT_TYPE,
    Recorder,
    RequestIdGenerator,
    RequestLog,
    Sampler,
    SloPolicy,
    SloWindow,
    SpaceSaving,
    SpanCollector,
    TraceContext,
    merge_trace_fragments,
    new_span_id,
    render_prometheus,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.coalescer import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.http import (
    HTTPProtocolError,
    Request,
    parse_request,
    read_head,
    response_bytes,
)
from repro.types import INF, QueryResult, Vertex

#: ``(status, payload, extra headers)`` produced by the route handlers.
Response = Tuple[int, object, Sequence[Tuple[str, str]]]

_RETRY_AFTER = (("Retry-After", "1"),)

#: Write-loop sentinel: no more responses on this connection.
_CLOSE = object()

#: Deferred log records to accumulate before handing a drain to the
#: executor thread — amortizes the submit overhead over a batch of
#: records.  Connection close and shutdown flush regardless.
_LOG_DRAIN_MIN_RECORDS = 24

_TRUTHY = ("1", "true", "yes")


class _Waiter:
    """An admitted query waiting on its batcher future.

    The write loop peeks at ``future`` before awaiting: when a batch
    scan has already resolved it (the common case under pipelining —
    a whole window resolves at once), the response is finished
    synchronously and coalesced into one socket write with its
    batch-mates, skipping the per-request ``wait_for`` timer and task
    wakeup entirely.  Awaiting the waiter (the slow path, and the
    POST batch path) applies the request deadline.
    """

    __slots__ = (
        "server", "future", "source", "target", "rid", "started",
        "meta", "explain", "fallback", "trace",
    )

    def __init__(
        self, server, future, source, target, rid, started, meta,
        explain, fallback=False, trace=None,
    ):
        self.server = server
        self.future = future
        self.source = source
        self.target = target
        self.rid = rid
        self.started = started
        self.meta = meta
        self.explain = explain
        self.fallback = fallback
        self.trace = trace

    def __await__(self):
        return self.server._finish(self).__await__()


def encode_result(
    source: Vertex, target: Vertex, result: QueryResult
) -> dict:
    """The wire form of one answer (``distance: null`` = disconnected)."""
    return {
        "source": source,
        "target": target,
        "distance": None if result.distance == INF else result.distance,
        "count": result.count,
    }


def encode_result_bytes(
    source: Vertex, target: Vertex, result: QueryResult
) -> bytes:
    """:func:`encode_result` pre-serialized — the hot path skips
    ``json.dumps`` (the bytes are byte-identical to dumping the dict
    with ``separators=(",", ":")``)."""
    distance = result.distance
    return b'{"source":%d,"target":%d,"distance":%s,"count":%d}' % (
        source,
        target,
        b"null" if distance == INF else repr(distance).encode(),
        result.count,
    )


class SPCServer:
    """Serves one built SPC index over HTTP with micro-batching.

    The server records into its own :class:`repro.obs.Recorder` (not
    the process-global one), so the indexes' zero-overhead-when-off
    query instrumentation stays off while ``/metrics`` still exposes
    full serving metrics.  Request-level observability (the SLO window
    and, when configured, the structured request log) lives next to
    the recorder and costs one clock read plus one histogram observe
    per request.
    """

    def __init__(
        self,
        index,
        config: Optional[ServeConfig] = None,
        *,
        recorder: Optional[Recorder] = None,
        request_log: Optional[RequestLog] = None,
        fallback=None,
        fault_plan=None,
        index_path: Optional[str] = None,
        updates=None,
        auto_rebuild: bool = True,
    ) -> None:
        self.config = config or ServeConfig()
        self.recorder = recorder if recorder is not None else Recorder()
        self.fault_plan = fault_plan
        if fault_plan is not None and fault_plan.recorder is NULL_RECORDER:
            fault_plan.recorder = self.recorder
        #: Live-update coordinator (``None`` = static serving).  When
        #: set, the server serves its :class:`LiveIndex` view and
        #: accepts ``POST /admin/update`` delta batches.
        self.updates = updates
        #: Whether passing the overlay threshold triggers an in-process
        #: rebuild-and-swap.  Fleet workers run with ``False``: the
        #: router drives the coordinated two-phase swap instead.
        self.auto_rebuild = auto_rebuild
        if updates is not None:
            if updates.recorder is NULL_RECORDER:
                updates.recorder = self.recorder
            index = updates.live_index
        if fault_plan is not None and fault_plan.targets(
            "scan.fail", "scan.slow"
        ):
            index = FaultyIndex(index, fault_plan)
        self.index = index
        #: Optional degraded-mode index (typically
        #: :class:`repro.baselines.online.OnlineSPC`): correct but slow
        #: answers while the circuit breaker holds the scan path open.
        self.fallback = fallback
        #: Where the served index was loaded from; ``SIGHUP`` and
        #: ``POST /admin/reload`` re-load and hot-swap from here.
        self.index_path = str(index_path) if index_path is not None else None
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown_s
        )
        self.cache = ResultCache(
            self.config.cache_size, recorder=self.recorder
        )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="spc-scan"
        )
        self._fallback_executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="spc-fallback"
            )
            if fallback is not None
            else None
        )
        #: Distributed-trace span collector (``None`` = tracing off).
        #: Spans land in a bounded ring; ``POST /admin/trace`` reads
        #: (and optionally clears) it as a fragment the fleet router
        #: merges into one cross-process Chrome trace.
        self.tracer: Optional[SpanCollector] = (
            SpanCollector(self.config.trace_buffer, role="server")
            if self.config.trace_buffer > 0
            else None
        )
        #: Local head sampler: 1 in ``trace_sample_every`` requests
        #: without an inbound ``traceparent`` start a new trace.  An
        #: inbound *sampled* traceparent is always honoured, so the
        #: router's (or client's) decision wins over local sampling.
        self._trace_sampler: Optional[Sampler] = (
            Sampler(self.config.trace_sample_every, self.config.log_seed)
            if self.tracer is not None
            and self.config.trace_sample_every > 0
            else None
        )
        self.batcher: Optional[MicroBatcher] = None
        if self.config.coalesce:
            self.batcher = MicroBatcher(
                self.index,
                max_batch=self.config.max_batch,
                max_wait_us=self.config.max_wait_us,
                recorder=self.recorder,
                executor=self._executor,
                fault_plan=fault_plan,
                tracer=self.tracer,
            )
        self._ids = RequestIdGenerator()
        #: Space-Saving sketch over symmetric query pairs — the
        #: bounded-memory ``top_pairs`` workload analytics in /stats.
        self.top_pairs: Optional[SpaceSaving] = (
            SpaceSaving(self.config.top_pairs_capacity)
            if self.config.top_pairs_capacity > 0
            else None
        )
        #: Cache-efficiency attribution: lookup outcomes split by
        #: whether the pair was already a tracked heavy hitter.
        self._hot_hits = 0
        self._hot_misses = 0
        self._tail_hits = 0
        self._tail_misses = 0
        #: perf_counter of the most recent update batch becoming
        #: visible (drives the ``live.staleness_s`` gauge).
        self._last_update_visible: Optional[float] = None
        self.request_log = request_log
        self._log_pending: list = []
        self._log_handle = None
        self.slo: Optional[SloWindow] = (
            SloWindow(self.config.slo_window_s)
            if self.config.slo_window_s > 0
            else None
        )
        self.slo_policy = SloPolicy(
            p99_ms=self.config.slo_p99_ms,
            max_error_rate=self.config.slo_error_rate,
        )
        self._index_meta: Optional[dict] = None
        #: Index staged by ``/admin/reload/prepare`` awaiting commit —
        #: ``(index, path, base_seqno)``; the fleet router drives the
        #: two phases (``base_seqno`` is ``None`` outside live mode).
        self._staged_reload: Optional[tuple] = None
        #: Delta batch staged by ``/admin/update/prepare`` awaiting the
        #: fleet router's commit (all-or-nothing fan-out).
        self._staged_update: Optional[list] = None
        #: Single-thread executor serialising overlay repairs off the
        #: event loop (created only in live mode).
        self._update_executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="spc-update")
            if updates is not None
            else None
        )
        #: Lazy executor for full index rebuilds, so a long build never
        #: queues behind (or blocks) streaming update batches.
        self._rebuild_executor: Optional[ThreadPoolExecutor] = None
        self._rebuild_task: Optional[asyncio.Task] = None
        #: Guards /admin/rebuild (one build-and-save at a time).
        self._rebuilding = False
        self._prev_switch_interval: Optional[float] = None
        #: Active sampling-profiler capture, if any — one at a time.
        self._profiler = None
        self._profile_seq = 0
        self.host = self.config.host
        self.port = self.config.port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._draining = False
        self._inflight = 0
        self._connections: set = set()
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SPCServer":
        """Bind and start accepting; resolves the actual port for port 0."""
        if self.request_log is None and self.config.access_log:
            if self.config.access_log == "-":
                stream = sys.stderr
            else:
                stream = self._log_handle = open(
                    self.config.access_log, "a", encoding="utf-8"
                )
            self.request_log = RequestLog(
                stream,
                slow_ms=self.config.slow_query_ms,
                sample_every=self.config.log_sample_every,
                seed=self.config.log_seed,
            )
        if self.config.switch_interval_s > 0:
            self._prev_switch_interval = sys.getswitchinterval()
            sys.setswitchinterval(self.config.switch_interval_s)
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_at = time.perf_counter()
        if self.request_log is not None:
            self.request_log.log_server(
                "start",
                host=self.host,
                port=self.port,
                index=type(self.index).__name__,
                request_id_prefix=self._ids.prefix,
            )
        return self

    def install_signal_handlers(
        self, signals: Sequence[int] = (signal.SIGTERM, signal.SIGINT)
    ) -> None:
        """Trigger a graceful drain when the process is asked to stop.

        Also installs a ``SIGHUP`` handler (where the platform has one)
        that hot-reloads the index from :attr:`index_path` — the
        operational idiom for swapping in a freshly built index with
        zero downtime.
        """
        loop = asyncio.get_running_loop()
        for signum in signals:
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: loop.create_task(self.shutdown()),
                )
            except NotImplementedError:  # non-unix event loops
                return
        if hasattr(signal, "SIGHUP") and self.index_path is not None:
            try:
                loop.add_signal_handler(
                    signal.SIGHUP,
                    lambda: loop.create_task(self._reload_quietly()),
                )
            except NotImplementedError:
                return
        # SIGUSR2: capture a 10 s sampling profile and write collapsed
        # flamegraph stacks next to the process — the zero-downtime way
        # to ask "what is this server doing right now?".
        if hasattr(signal, "SIGUSR2"):
            try:
                loop.add_signal_handler(
                    signal.SIGUSR2,
                    lambda: loop.create_task(self._profile_to_file()),
                )
            except NotImplementedError:
                return

    async def _reload_quietly(self) -> None:
        """SIGHUP reload: failures are logged, never fatal."""
        try:
            await self.reload_index()
        except Exception as exc:
            if self.request_log is not None:
                self.request_log.log_server("reload_failed", error=str(exc))

    async def reload_index(self, path: Optional[str] = None) -> dict:
        """Hot-swap a freshly validated index loaded from ``path``.

        The load (and its full checksum validation) runs on a side
        thread; the swap itself happens on the event loop in one step,
        so in-flight batches finish against the old index object while
        new submissions see the new one — zero requests dropped.  The
        result cache is cleared (answers may differ) and the circuit
        breaker resets.  Raises on any load/validation failure, leaving
        the previous index serving untouched.
        """
        started = time.perf_counter()
        if self.updates is not None:
            raise ReproError(
                "live-update server: a direct reload would desynchronize "
                "the delta overlay from the served labels; use "
                "POST /admin/rebuild (or the fleet's coordinated swap) "
                "instead"
            )
        new_index, path = await self._load_for_reload(path)
        return self._swap_index(new_index, path, started)

    async def _load_for_reload(self, path: Optional[str] = None):
        """Load and validate a reload candidate without swapping it in.

        Runs the load on a side thread with full checksum verification
        (``verify=True`` covers the mmap'd v4 sections too — a staged
        index must never be trusted on structure alone).  Returns
        ``(index, path)`` with fault wrapping already applied; raises
        on any failure, counting it against ``serve.reload.failed``.
        """
        from repro.core.serialize import load_index

        path = path or self.index_path
        if path is None:
            raise ReproError(
                "no index path to reload from (server was started with "
                "an in-memory index)"
            )

        def _load():
            if self.fault_plan is not None:
                self.fault_plan.check("index.load")
            index = load_index(path, verify=True)
            index.stats()  # structural sanity before it may serve
            return index

        try:
            new_index = await asyncio.get_running_loop().run_in_executor(
                None, _load
            )
        except Exception:
            self.recorder.incr("serve.reload.failed")
            raise
        if self.fault_plan is not None and self.fault_plan.targets(
            "scan.fail", "scan.slow"
        ):
            new_index = FaultyIndex(new_index, self.fault_plan)
        return new_index, str(path)

    def _swap_index(
        self, new_index, path: str, started: Optional[float] = None
    ) -> dict:
        """Point the serving path at ``new_index`` — one event-loop step.

        In-flight batches finish against the old index object; new
        submissions see the new one.  Never fails: everything that can
        go wrong happened in :meth:`_load_for_reload`.
        """
        self.index = new_index
        if self.batcher is not None:
            self.batcher.swap_index(new_index)
        self.cache.clear()
        self._index_meta = None
        self.breaker.record_success()
        self.index_path = path
        self.recorder.incr("serve.reload.count")
        info = {
            "path": path,
            "index": type(new_index).__name__
            if not isinstance(new_index, FaultyIndex)
            else type(new_index.inner).__name__,
        }
        if started is not None:
            info["seconds"] = time.perf_counter() - started
        if self.request_log is not None:
            self.request_log.log_server("reload", **info)
        return info

    async def _adopt_live(
        self,
        new_index,
        path: str,
        base_seqno,
        started: Optional[float] = None,
    ) -> dict:
        """Live-mode commit: adopt a rebuilt base into the coordinator.

        The loaded index becomes the overlay's new base (epoch + 1);
        batches applied after its snapshot are re-derived onto it on the
        update executor.  The serving :class:`LiveIndex` object never
        changes identity, so the batcher keeps its reference and the
        cache stays valid — answers are unchanged by construction.
        """
        if isinstance(new_index, FaultyIndex):
            new_index = new_index.inner
        info = await asyncio.get_running_loop().run_in_executor(
            self._update_executor,
            self.updates.adopt_base,
            new_index,
            int(base_seqno),
            path,  # pin the adopted base in the WAL's new epoch file
        )
        self.index_path = path
        self._index_meta = None
        self.breaker.record_success()
        self.recorder.incr("serve.reload.count")
        payload = {"path": path, "live": True, **info}
        if started is not None:
            payload["seconds"] = time.perf_counter() - started
        if self.request_log is not None:
            self.request_log.log_server("reload", **payload)
        return payload

    async def wait_stopped(self) -> None:
        """Block until a drain has fully completed."""
        assert self._stopped is not None, "server was never started"
        await self._stopped.wait()

    @property
    def draining(self) -> bool:
        """Whether a graceful drain is in progress (or finished)."""
        return self._draining

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, flush, stop."""
        if self._draining:
            return
        self._draining = True
        self.recorder.incr("serve.drain.count")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            _, still_open = await asyncio.wait(
                list(self._connections), timeout=self.config.drain_grace_s
            )
            for task in still_open:
                task.cancel()
            if still_open:
                await asyncio.gather(*still_open, return_exceptions=True)
        if self.batcher is not None:
            await self.batcher.drain()
        if self._rebuild_task is not None:
            self._rebuild_task.cancel()
            await asyncio.gather(self._rebuild_task, return_exceptions=True)
        self._executor.shutdown(wait=True)
        if self._fallback_executor is not None:
            self._fallback_executor.shutdown(wait=True)
        if self._update_executor is not None:
            self._update_executor.shutdown(wait=True, cancel_futures=True)
        if self._rebuild_executor is not None:
            self._rebuild_executor.shutdown(wait=True, cancel_futures=True)
        self._drain_request_log(force=True, inline=True)
        if self.request_log is not None:
            self.request_log.log_server("drain")
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None
        if self._prev_switch_interval is not None:
            sys.setswitchinterval(self._prev_switch_interval)
            self._prev_switch_interval = None
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        """One connection: a read loop feeding an in-order write loop.

        The read loop never awaits an answer — it parses, dispatches
        (which enqueues the query into the coalescer), and immediately
        reads the next request.  A pipelining client therefore lands
        its whole window in one batch, while the write loop sends the
        responses back in request order.
        """
        task = asyncio.current_task()
        self._connections.add(task)
        self.recorder.incr("serve.connections")
        out: deque = deque()
        wake = asyncio.Event()
        write_loop = asyncio.get_running_loop().create_task(
            self._write_loop(writer, out, wake)
        )
        try:
            while True:
                head = await read_head(reader)
                if head is None:
                    break
                item = self._fast_query(head)
                if item is None:
                    request = await parse_request(head, reader)
                    keep_alive = request.keep_alive and not self._draining
                    item = (self._dispatch(request), keep_alive)
                out.append(item)
                wake.set()
                if not item[1]:
                    break
        except HTTPProtocolError as exc:
            self.recorder.incr("serve.errors.protocol")
            out.append(((400, {"error": str(exc)}, ()), False))
            wake.set()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            self.recorder.incr("serve.errors.connection")
        finally:
            out.append(_CLOSE)
            wake.set()
            try:
                await write_loop
            finally:
                self._connections.discard(task)
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _write_loop(self, writer, out: deque, wake) -> None:
        """Send queued responses in order, coalescing ready bursts.

        Consecutive responses whose answers are already available —
        ready tuples and :class:`_Waiter` entries whose batch has
        resolved — are joined into a single socket write, so one
        resolved window costs one syscall per connection instead of
        one per response.  The buffer is flushed before any await that
        could suspend (an unresolved entry) so earlier answers are
        never held back, and at the end of each burst.
        """
        broken = False
        buf: List[bytes] = []
        while True:
            while not out:
                wake.clear()
                await wake.wait()
            item = out.popleft()
            if item is _CLOSE:
                if buf and not broken:
                    try:
                        writer.write(b"".join(buf))
                        await writer.drain()
                    except (ConnectionError, OSError):
                        self.recorder.incr("serve.errors.connection")
                self._drain_request_log(force=True)
                return
            entry, keep_alive = item
            try:
                if type(entry) is tuple:
                    status, payload, extra = entry
                elif type(entry) is _Waiter and entry.future.done():
                    status, payload, extra = self._finish_done(entry)
                else:
                    # About to suspend: ship what's already encoded.
                    if buf and not broken:
                        try:
                            writer.write(b"".join(buf))
                        except (ConnectionError, OSError):
                            self.recorder.incr(
                                "serve.errors.connection"
                            )
                            broken = True
                    buf.clear()
                    status, payload, extra = await entry
            except Exception as exc:  # keep later answers alive
                self.recorder.incr("serve.errors.internal")
                status, payload, extra = (
                    500, {"error": f"internal error: {exc}"}, ()
                )
            if broken:
                continue  # keep consuming so computations are awaited
            encoded = response_bytes(
                status,
                payload,
                keep_alive=keep_alive,
                extra_headers=extra,
            )
            plan = self.fault_plan
            if plan is not None and plan.should_fire("conn.reset"):
                # Chaos: ship any finished responses plus *half* of
                # this one, then hard-abort the socket — the exact
                # mid-response reset the client retry policy must
                # survive.
                self.recorder.incr("serve.errors.injected_reset")
                try:
                    writer.write(
                        b"".join(buf) + encoded[: max(1, len(encoded) // 2)]
                    )
                    writer.transport.abort()
                except (ConnectionError, OSError):
                    pass
                buf.clear()
                broken = True
                continue
            buf.append(encoded)
            if not out:  # burst over: one write + drain for the lot
                try:
                    writer.write(b"".join(buf))
                    await writer.drain()
                except (ConnectionError, OSError):
                    self.recorder.incr("serve.errors.connection")
                    broken = True
                buf.clear()
                self._drain_request_log()

    # ------------------------------------------------------------------
    # per-request observability
    # ------------------------------------------------------------------
    def _finish_request(
        self,
        status: int,
        payload,
        extra,
        *,
        rid: str,
        started: float,
        method: str = "GET",
        path: str = "/query",
        source: Optional[int] = None,
        target: Optional[int] = None,
        cache_hit: Optional[bool] = None,
        meta: Optional[dict] = None,
        labels_scanned: Optional[int] = None,
        error: Optional[str] = None,
        track_slo: bool = True,
        trace=None,
    ) -> Response:
        """Stamp one finished request: id header, SLO window, log record.

        Every response funnels through here exactly once, so the
        correlation contract — the id a client sent comes back in the
        header *and* appears in the matching log records — holds on
        every path (cache hit, batch scan, shed, timeout, error).
        ``trace`` is the request's span tuple ``(trace_id, span_id,
        parent_id)`` when it is being traced: the request span is
        recorded here (covering admission to response encoding) and
        the trace id is stamped into the log record.
        """
        latency_s = time.perf_counter() - started
        if trace is not None and self.tracer is not None:
            self.tracer.record(
                "serve.request",
                trace_id=trace[0],
                span_id=trace[1],
                parent_id=trace[2],
                start=started,
                duration=latency_s,
                attrs={"status": status, "path": path},
            )
        if track_slo and self.slo is not None:
            # Positional: error, shed, cache_hit, queue_depth.
            self.slo.record(
                latency_s,
                status >= 500 and status != 503,
                status == 503,
                cache_hit,
                self._inflight,
            )
        log = self.request_log
        if log is not None:
            # Sampling is decided here, in finish order (the same
            # stream a per-record log_request call would consume), so
            # a sampled-out request costs one RNG draw and nothing
            # more — no pending tuple, no drain-time iteration.
            if (
                error is None
                and status == 200
                and not (latency_s * 1000.0 >= log.slow_ms > 0)
                and not log.sampler.keep()
            ):
                log.sampled_out += 1
            else:
                # Defer the record: formatting and writing happen in
                # _drain_request_log after the response bytes are on
                # the wire, so logging never sits between a resolved
                # batch and the client seeing its answers (which would
                # shrink the next coalescing window).
                self._log_pending.append(
                    (rid, method, path, status, latency_s, source,
                     target, cache_hit, meta, labels_scanned, error,
                     trace[0] if trace is not None else None)
                )
        return status, payload, (("X-Request-Id", rid),) + tuple(extra)

    def _drain_request_log(
        self, force: bool = False, inline: bool = False
    ) -> None:
        """Hand deferred request records to the scan worker to write.

        Formatting and writing happen on the executor thread, in the
        shadow of the scans it is already running, so the event loop
        never pauses to serialize log lines between sending a burst of
        responses and reading the next requests (a pause there staggers
        arrivals and shrinks coalescing windows).  The executor has one
        worker, so drains run in submission order and record order
        matches finish order — sampling (already decided per record)
        and the log file stay deterministic.

        Burst-end calls are threshold-gated so a drain amortizes the
        executor handoff over many records; ``force`` flushes whatever
        is pending (connection close, shutdown), and ``inline`` writes
        on the calling thread — shutdown uses it after the executor has
        already been joined.
        """
        log, pending = self.request_log, self._log_pending
        if log is None or not pending:
            return
        if not force and len(pending) < _LOG_DRAIN_MIN_RECORDS:
            return
        self._log_pending = []
        if inline:
            log.log_batch(pending, presampled=True)
        else:
            self._executor.submit(log.log_batch, pending, presampled=True)

    def _explain_counters(
        self,
        source: int,
        target: int,
        *,
        cache_hit: bool,
        meta: Optional[dict],
    ) -> dict:
        """The algorithmic story behind one answer.

        ``labels_scanned`` re-runs the O(h) label scan through
        :meth:`SPCIndex.query_with_stats` — explain is a diagnostic
        path, and the second scan guarantees the reported counter is
        *exactly* what an offline ``query_with_stats`` call measures
        (the parity the tests pin).  Tree-based indexes also report
        the LCA node's depth and width (its cut size — the paper's
        per-node label-count driver).
        """
        counters: dict = {"cache_hit": cache_hit}
        try:
            stats = self.index.query_with_stats(source, target)
            counters["labels_scanned"] = stats.visited_labels
        except Exception:  # diagnostic only — a broken index (the
            pass          # reason we fell back) must not fail explain
        tree = getattr(self.index, "tree", None)
        if tree is not None:
            try:
                node = tree.lca_node(source, target)
                counters["lca_depth"] = node.depth
                counters["lca_width"] = node.size
            except (KeyError, AttributeError):
                pass
        if self.updates is not None:
            live = self.updates.live_index
            state = live.state
            counters["epoch"] = state.epoch
            counters["seqno"] = state.seqno
            if self._last_update_visible is not None:
                counters["update_staleness_s"] = round(
                    time.perf_counter() - self._last_update_visible, 6
                )
            try:
                counters["poisoned"] = live.pair_poisoned(source, target)
            except Exception:
                pass  # diagnostic only
        if meta:
            if meta.get("fallback"):
                counters["fallback"] = True
            if "batch_size" in meta:
                counters["batch_size"] = meta["batch_size"]
                counters["flush_reason"] = meta.get("flush_reason")
            if "queue_wait_s" in meta:
                counters["queue_wait_us"] = round(
                    meta["queue_wait_s"] * 1e6, 1
                )
            if "scan_s" in meta:
                counters["scan_us"] = round(meta["scan_s"] * 1e6, 1)
        return counters

    # ------------------------------------------------------------------
    # distributed tracing
    # ------------------------------------------------------------------
    def _sample_trace(self):
        """A locally-rooted trace tuple for 1 in N untraced requests.

        Returns ``(trace_id, span_id, parent_id)`` for the request
        span — the root of a new trace (no parent) — or ``None`` when
        the sampler passes.
        """
        sampler = self._trace_sampler
        if sampler is None or not sampler.keep():
            return None
        ctx = TraceContext.generate()
        return ctx.trace_id, ctx.span_id, None

    def _trace_from_header(self, value: str):
        """The trace tuple an inbound ``traceparent`` header dictates.

        A sampled context yields a child span tuple (always honoured,
        regardless of local sampling); an explicit *unsampled* context
        suppresses tracing for this request; a malformed header is
        treated as absent per W3C (the trace restarts here, subject to
        local sampling).
        """
        ctx = TraceContext.parse(value)
        if ctx is None:
            return self._sample_trace()
        if not ctx.sampled:
            return None
        return ctx.trace_id, new_span_id(), ctx.span_id

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _fast_query(self, head: bytes):
        """Byte-level fast path for ``GET /query?source=S&target=T``.

        The hot request shape is parsed straight off the head bytes —
        no header dict, no :class:`Request` — which roughly halves the
        framing cost per query.  Anything unusual (other param order,
        percent-encoding, a body) returns ``None`` and takes the full
        parser; behaviour is identical either way.  An inbound
        ``X-Request-Id`` is honored here too: an exact-case find
        first (free for the common canonical spelling), then one
        lowercase pass over the small head when that misses.
        """
        if not head.startswith(b"GET /query?source="):
            return None
        end = head.find(b" HTTP/", 18)
        if end < 0 or b"ontent-" in head:
            return None
        src, sep, tgt = head[18:end].partition(b"&")
        if not sep or not tgt.startswith(b"target="):
            return None
        try:
            source, target = int(src), int(tgt[7:])
        except ValueError:
            return None
        mark = head.find(b"X-Request-Id:")
        if mark < 0:
            mark = head.lower().find(b"x-request-id:")
        if mark >= 0:
            stop = head.index(b"\r", mark)
            rid = head[mark + 13 : stop].strip().decode("latin-1")
        else:
            rid = self._ids.next_id()
        trace = None
        if self.tracer is not None:
            # Same header-scan idiom as X-Request-Id: exact-case find
            # for the canonical (lowercase, per W3C) spelling first.
            # One find covers both the canonical lowercase spelling
            # (per W3C) and title-case senders — no real header other
            # than traceparent ends in "raceparent:".
            mark = head.find(b"raceparent:")
            if mark >= 0:
                stop = head.index(b"\r", mark)
                trace = self._trace_from_header(
                    head[mark + 11 : stop].strip().decode("latin-1")
                )
            else:
                # _sample_trace() inlined: this branch runs once per
                # fast-path request and almost always returns None.
                sampler = self._trace_sampler
                if sampler is not None and sampler.keep():
                    ctx = TraceContext.generate()
                    trace = (ctx.trace_id, ctx.span_id, None)
        self.recorder.incr("serve.requests")
        self._maybe_die()
        keep_alive = (b"close" not in head) and not self._draining
        return self._query_entry(source, target, rid, trace=trace), keep_alive

    def _maybe_die(self) -> None:
        """Chaos site ``worker.kill``: SIGKILL this process mid-request.

        Only query traffic draws the site — admin fan-outs and health
        probes stay deterministic — and SIGKILL (not an exception)
        models the real failure the fleet supervisor must detect: no
        drain, no goodbye, a half-written response on the wire.
        """
        plan = self.fault_plan
        if plan is not None and plan.should_fire("worker.kill"):
            os.kill(os.getpid(), signal.SIGKILL)

    def _dispatch(self, request: Request):
        """Route one request: a ready Response or an awaitable of one.

        Runs synchronously inside the read loop, so a query's
        submission reaches the coalescer *before* the next pipelined
        request is parsed — only the waiting (deadline, cache fill,
        encoding) is deferred to the awaitable the write loop resolves.
        """
        self.recorder.incr("serve.requests")
        rid = request.headers.get("x-request-id") or self._ids.next_id()
        if request.path == "/query":
            self._maybe_die()
            trace = None
            if self.tracer is not None:
                header = request.headers.get("traceparent")
                trace = (
                    self._trace_from_header(header)
                    if header is not None
                    else self._sample_trace()
                )
            return self._dispatch_query(request, rid, trace)
        if request.path == "/admin/reload":
            return self._handle_reload(request, rid)
        if request.path in (
            "/admin/reload/prepare",
            "/admin/reload/commit",
            "/admin/reload/abort",
        ):
            return self._handle_reload_phase(
                request, rid, request.path.rsplit("/", 1)[1]
            )
        if request.path == "/admin/update":
            return self._handle_update(request, rid, None)
        if request.path in (
            "/admin/update/prepare",
            "/admin/update/commit",
            "/admin/update/abort",
        ):
            return self._handle_update(
                request, rid, request.path.rsplit("/", 1)[1]
            )
        if request.path == "/admin/rebuild":
            return self._handle_rebuild(request, rid)
        if request.path == "/admin/profile":
            return self._handle_profile(request, rid)
        started = time.perf_counter()
        if request.path == "/health":
            status, payload, extra = self._handle_health()
        elif request.path == "/metrics":
            status, payload, extra = self._handle_metrics(request)
        elif request.path == "/stats":
            status, payload, extra = self._handle_stats()
        elif request.path == "/admin/trace":
            status, payload, extra = self._handle_trace(request)
        else:
            self.recorder.incr("serve.errors.route")
            status, payload, extra = (
                404, {"error": f"unknown path {request.path!r}"}, ()
            )
        return self._finish_request(
            status,
            payload,
            extra,
            rid=rid,
            started=started,
            method=request.method,
            path=request.path,
            track_slo=False,  # only query traffic drives the SLO
        )

    def _index_metadata(self) -> dict:
        """Static index identity for ``/health``+``/stats`` (cached).

        Includes the load provenance :func:`repro.core.serialize` left
        on the index (format version, v3 section byte sizes, embedded
        ``build_info``) so perf records taken against this server can
        be correlated with the exact index build that answered them.
        """
        if self._index_meta is None:
            meta = {"type": type(self.index).__name__}
            try:
                stats = self.index.stats()
                meta.update(
                    vertices=stats.num_vertices,
                    edges=stats.num_edges,
                    label_entries=stats.total_label_entries,
                )
            except (AttributeError, ReproError):
                pass  # duck-typed test doubles without stats()
            provenance = getattr(self.index, "provenance", None)
            if provenance:
                meta["provenance"] = provenance
            self._index_meta = meta
        return self._index_meta

    def _slo_state(self) -> Tuple[str, List[str], Optional[dict]]:
        """``(status, breaches, window snapshot)`` of the SLO tracker."""
        if self.slo is None:
            return "ok", [], None
        window = self.slo.snapshot()
        status, breaches = self.slo_policy.evaluate(window)
        return status, breaches, window

    async def _handle_reload(self, request: Request, rid: str) -> Response:
        """``POST /admin/reload``: hot-swap the index from disk.

        With a JSON body ``{"path": "..."}`` the swap loads that file
        (and it becomes the new :attr:`index_path`); without one, the
        path the server was started from is re-read.  A failed load —
        missing file, corrupt checksums, wrong format — returns 409 and
        leaves the previous index serving.
        """
        started = time.perf_counter()
        if request.method != "POST":
            return self._finish_request(
                405,
                {"error": "reload requires POST"},
                (("Allow", "POST"),),
                rid=rid, started=started, method=request.method,
                path="/admin/reload", track_slo=False,
            )
        error = None
        try:
            body = request.json()
            path = (
                body.get("path") if isinstance(body, dict) else None
            )
            info = await self.reload_index(path)
            status, payload = 200, {"reloaded": True, **info}
        except Exception as exc:
            error = str(exc) or type(exc).__name__
            status, payload = 409, {"reloaded": False, "error": error}
        return self._finish_request(
            status, payload, (),
            rid=rid, started=started, method="POST",
            path="/admin/reload", error=error, track_slo=False,
        )

    async def _handle_reload_phase(
        self, request: Request, rid: str, phase: str
    ) -> Response:
        """Two-phase reload, driven worker-by-worker by the fleet router.

        * ``POST /admin/reload/prepare`` — load + fully verify the
          candidate (body ``{"path": ...}`` or the current path) and
          stage it without serving it.  409 on any failure.
        * ``POST /admin/reload/commit`` — atomically swap the staged
          index in.  409 if nothing is staged.
        * ``POST /admin/reload/abort`` — drop the staged index (idempotent).

        A router prepares every worker before committing any, so a
        corrupt file is rejected fleet-wide while the old index keeps
        serving on all workers — no half-upgraded fleet.
        """
        started = time.perf_counter()
        path = f"/admin/reload/{phase}"
        if request.method != "POST":
            return self._finish_request(
                405, {"error": f"reload {phase} requires POST"},
                (("Allow", "POST"),),
                rid=rid, started=started, method=request.method,
                path=path, track_slo=False,
            )
        error = None
        try:
            if phase == "prepare":
                body = request.json()
                target = (
                    body.get("path") if isinstance(body, dict) else None
                )
                base_seqno = (
                    body.get("base_seqno") if isinstance(body, dict) else None
                )
                if self.updates is not None and base_seqno is None:
                    raise ReproError(
                        "live-update server: reload prepare requires the "
                        "coordinated rebuild's base_seqno (a plain reload "
                        "would desynchronize the delta overlay)"
                    )
                staged = await self._load_for_reload(target)
                self._staged_reload = (staged[0], staged[1], base_seqno)
                status, payload = 200, {
                    "prepared": True, "path": staged[1],
                }
            elif phase == "commit":
                if self._staged_reload is None:
                    raise ReproError("no staged reload to commit")
                new_index, target, base_seqno = self._staged_reload
                self._staged_reload = None
                if self.updates is not None:
                    info = await self._adopt_live(
                        new_index, target, base_seqno, started
                    )
                else:
                    info = self._swap_index(new_index, target, started)
                status, payload = 200, {"reloaded": True, **info}
            else:  # abort
                dropped = self._staged_reload is not None
                self._staged_reload = None
                status, payload = 200, {"aborted": dropped}
        except Exception as exc:
            error = str(exc) or type(exc).__name__
            status, payload = 409, {phase: False, "error": error}
        return self._finish_request(
            status, payload, (),
            rid=rid, started=started, method="POST",
            path=path, error=error, track_slo=False,
        )

    async def _handle_update(
        self, request: Request, rid: str, phase: Optional[str]
    ) -> Response:
        """``POST /admin/update``: apply one JSON delta batch.

        Body: ``{"updates": [[a, b, new_weight], ...]}``.  The 200 is
        sent only after the overlay reflecting the batch is published,
        so a caller that got the response is guaranteed every
        subsequent query answers on the new weights.  Bad batches
        (unknown edge, non-positive weight, malformed item) are
        rejected 400 before any weight is written.

        ``/admin/update/prepare|commit|abort`` are the fleet's
        all-or-nothing fan-out: prepare validates and stages the batch,
        commit applies the staged batch, abort drops it.
        """
        started = time.perf_counter()
        path = "/admin/update" if phase is None else f"/admin/update/{phase}"

        def _reject(status: int, message: str, extra=()):
            return self._finish_request(
                status, {"applied": False, "error": message}, extra,
                rid=rid, started=started, method=request.method,
                path=path, error=message, track_slo=False,
            )

        if request.method != "POST":
            return _reject(
                405, "update requires POST", (("Allow", "POST"),)
            )
        if self.updates is None:
            return _reject(
                409,
                "live updates are not enabled (start the server with "
                "--live-updates and --graph)",
            )
        error = None
        status = 200
        try:
            if phase == "abort":
                dropped = self._staged_update is not None
                self._staged_update = None
                payload: dict = {"aborted": dropped}
            elif phase == "commit":
                if self._staged_update is None:
                    raise LiveUpdateError("no staged update batch to commit")
                staged = self._staged_update
                self._staged_update = None
                payload = await self._apply_update(staged, started)
            else:
                body = request.json()
                raw = body.get("updates") if isinstance(body, dict) else None
                if not isinstance(raw, list):
                    raise LiveUpdateError(
                        'update body must be {"updates": [[a, b, weight], '
                        "...]}"
                    )
                validate_started = time.perf_counter()
                normalized = self.updates.validate_batch(raw)
                validate_span = (
                    validate_started,
                    time.perf_counter() - validate_started,
                )
                if phase == "prepare":
                    self._staged_update = normalized
                    payload = {"prepared": True, "edges": len(normalized)}
                else:
                    payload = await self._apply_update(
                        normalized, started, validate_span
                    )
        except Exception as exc:
            error = str(exc) or type(exc).__name__
            status = 409 if phase == "commit" else 400
            payload = {"applied": False, "error": error}
        return self._finish_request(
            status, payload, (),
            rid=rid, started=started, method="POST",
            path=path, error=error, track_slo=False,
        )

    async def _apply_update(
        self,
        normalized: list,
        ingest_started: Optional[float] = None,
        validate_span: Optional[Tuple[float, float]] = None,
    ) -> dict:
        """Apply a validated batch off-loop; invalidate poisoned keys.

        ``ingest_started`` is when the delta batch hit the socket —
        the whole ingest → validation → overlay-apply → visible-epoch
        path is measured from it into the ``live.freshness_ms``
        histogram and, when tracing is on, recorded as a ``live.update``
        span tree (``validate_span`` carries the validation phase's
        ``(start, duration)`` when it ran in this request).
        """
        apply_started = time.perf_counter()
        report = await asyncio.get_running_loop().run_in_executor(
            self._update_executor, self.updates.apply_batch, normalized
        )
        visible = time.perf_counter()
        self._last_update_visible = visible
        if ingest_started is not None:
            self.recorder.observe(
                "live.freshness_ms", (visible - ingest_started) * 1000.0
            )
            tracer = self.tracer
            if tracer is not None:
                ctx = TraceContext.generate()
                tracer.record(
                    "live.update",
                    trace_id=ctx.trace_id,
                    span_id=ctx.span_id,
                    start=ingest_started,
                    duration=visible - ingest_started,
                    attrs={
                        "epoch": report.epoch,
                        "seqno": report.seqno,
                        "edges": report.updated_edges,
                    },
                )
                if validate_span is not None:
                    tracer.record(
                        "live.ingest",
                        trace_id=ctx.trace_id,
                        span_id=new_span_id(),
                        parent_id=ctx.span_id,
                        start=ingest_started,
                        duration=validate_span[0] - ingest_started,
                    )
                    tracer.record(
                        "live.validate",
                        trace_id=ctx.trace_id,
                        span_id=new_span_id(),
                        parent_id=ctx.span_id,
                        start=validate_span[0],
                        duration=validate_span[1],
                    )
                tracer.record(
                    "live.overlay_apply",
                    trace_id=ctx.trace_id,
                    span_id=new_span_id(),
                    parent_id=ctx.span_id,
                    start=apply_started,
                    duration=visible - apply_started,
                    attrs={"repaired_nodes": report.repaired_nodes},
                )
        changed = report.changed_vertices
        dropped = 0
        if changed:
            # Targeted invalidation: an answer can only have moved if
            # one of its endpoints had a label entry patched (or
            # unpatched) by this batch.
            dropped = self.cache.invalidate(
                lambda key: key[0] in changed or key[1] in changed
            )
        rec = self.recorder
        rec.incr("serve.update.batches")
        rec.incr("serve.update.edges", report.updated_edges)
        rec.observe("serve.update.apply_seconds", report.seconds)
        if self.request_log is not None:
            self.request_log.log_server(
                "update",
                epoch=report.epoch,
                seqno=report.seqno,
                edges=report.updated_edges,
                repaired_nodes=report.repaired_nodes,
                overlay_entries=report.overlay_entries,
                cache_dropped=dropped,
                seconds=round(report.seconds, 6),
            )
        rebuild_due = self.updates.should_rebuild()
        if (
            rebuild_due
            and self.auto_rebuild
            and self._rebuild_task is None
            and not self._draining
        ):
            self._rebuild_task = asyncio.get_running_loop().create_task(
                self._run_rebuild()
            )
        return {
            "applied": True,
            "epoch": report.epoch,
            "seqno": report.seqno,
            "updated_edges": report.updated_edges,
            "submitted_edges": report.submitted_edges,
            "overlay_entries": report.overlay_entries,
            "cache_dropped": dropped,
            "rebuild_due": rebuild_due,
        }

    async def _run_rebuild(self) -> None:
        """Background rebuild-and-swap after the overlay threshold.

        The full CTL construction runs on its own executor thread so
        streaming batches keep applying; the swap itself (adopting the
        new base and replaying post-snapshot batches) is the only
        pause, reported as ``serve.rebuild.swap_seconds``.
        """
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        try:
            if self._rebuild_executor is None:
                self._rebuild_executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="spc-rebuild"
                )
            new_index, base_seqno = await loop.run_in_executor(
                self._rebuild_executor, self.updates.rebuild
            )
            swap_started = time.perf_counter()
            info = await loop.run_in_executor(
                self._update_executor,
                self.updates.adopt_base,
                new_index,
                base_seqno,
            )
            pause = time.perf_counter() - swap_started
            self._index_meta = None
            rec = self.recorder
            rec.incr("serve.rebuild.count")
            rec.observe(
                "serve.rebuild.seconds", time.perf_counter() - started
            )
            rec.observe("serve.rebuild.swap_seconds", pause)
            if self.request_log is not None:
                self.request_log.log_server(
                    "rebuild",
                    epoch=info["epoch"],
                    base_seqno=base_seqno,
                    replayed_edges=info["replayed_edges"],
                    overlay_entries=info["overlay_entries"],
                    seconds=round(time.perf_counter() - started, 6),
                    swap_ms=round(pause * 1000, 3),
                )
        except Exception as exc:
            self.recorder.incr("serve.rebuild.failed")
            if self.request_log is not None:
                self.request_log.log_server(
                    "rebuild_failed", error=str(exc) or type(exc).__name__
                )
        finally:
            self._rebuild_task = None

    async def _handle_rebuild(self, request: Request, rid: str) -> Response:
        """``POST /admin/rebuild``: build + save a fresh base index.

        Builds a new index from the coordinator's current graph and
        writes it (atomically, v4 container) to the body's ``path`` or
        ``<index_path>.rebuild``.  Returns the saved path and the
        snapshot's ``base_seqno`` — the fleet router feeds both into the
        two-phase ``/admin/reload`` so every worker adopts the same
        base.  The overlay keeps serving unchanged until that commit.
        """
        started = time.perf_counter()

        def _reject(status: int, message: str, extra=()):
            return self._finish_request(
                status, {"rebuilt": False, "error": message}, extra,
                rid=rid, started=started, method=request.method,
                path="/admin/rebuild", error=message, track_slo=False,
            )

        if request.method != "POST":
            return _reject(
                405, "rebuild requires POST", (("Allow", "POST"),)
            )
        if self.updates is None:
            return _reject(409, "live updates are not enabled")
        if self._rebuilding:
            return _reject(409, "a rebuild is already running")
        try:
            body = request.json()
            target = body.get("path") if isinstance(body, dict) else None
        except Exception as exc:
            return _reject(400, str(exc))
        if target is None:
            if self.index_path is None:
                return _reject(
                    409,
                    "no path to save the rebuilt index (in-memory index "
                    "and no 'path' in the request body)",
                )
            target = f"{self.index_path}.rebuild"
        if self._rebuild_executor is None:
            self._rebuild_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="spc-rebuild"
            )

        def _build_and_save():
            from repro.core.serialize import save_index

            new_index, base_seqno = self.updates.rebuild()
            save_index(new_index, target, format="binary")
            return base_seqno

        self._rebuilding = True
        error = None
        try:
            base_seqno = await asyncio.get_running_loop().run_in_executor(
                self._rebuild_executor, _build_and_save
            )
            seconds = time.perf_counter() - started
            self.recorder.incr("serve.rebuild.count")
            self.recorder.observe("serve.rebuild.seconds", seconds)
            if self.request_log is not None:
                self.request_log.log_server(
                    "rebuild_saved",
                    path=str(target),
                    base_seqno=base_seqno,
                    seconds=round(seconds, 6),
                )
            status, payload = 200, {
                "rebuilt": True,
                "path": str(target),
                "base_seqno": base_seqno,
                "seconds": seconds,
            }
        except Exception as exc:
            error = str(exc) or type(exc).__name__
            self.recorder.incr("serve.rebuild.failed")
            status, payload = 409, {"rebuilt": False, "error": error}
        finally:
            self._rebuilding = False
        return self._finish_request(
            status, payload, (),
            rid=rid, started=started, method="POST",
            path="/admin/rebuild", error=error, track_slo=False,
        )

    async def _handle_profile(self, request: Request, rid: str) -> Response:
        """``POST /admin/profile?seconds=N``: live sampling profile.

        Attaches the wall-clock sampling profiler
        (:class:`repro.obs.sampling.SamplingProfiler`) to the running
        process for ``seconds`` (default 2, capped at 60) and returns
        the capture — collapsed flamegraph stacks as ``text/plain`` by
        default, or a Chrome trace payload with ``format=chrome``.
        ``interval_ms`` tunes the sampling period (default 10 ms).  One
        capture at a time: a concurrent request gets 409.  Query
        traffic keeps flowing while the capture runs; the measured
        overhead is under 5% of QPS (asserted in ``bench_serve.py``).
        """
        started = time.perf_counter()

        def _reject(status: int, message: str, extra=()):
            return self._finish_request(
                status, {"error": message}, extra,
                rid=rid, started=started, method=request.method,
                path="/admin/profile", error=message, track_slo=False,
            )

        if request.method != "POST":
            return _reject(
                405, "profile requires POST", (("Allow", "POST"),)
            )
        try:
            seconds = float(request.params.get("seconds", "2"))
            interval_ms = float(request.params.get("interval_ms", "10"))
        except ValueError:
            return _reject(400, "seconds/interval_ms must be numbers")
        if not 0 < seconds <= 60:
            return _reject(400, "seconds must be in (0, 60]")
        if not 0.5 <= interval_ms <= 1000:
            return _reject(400, "interval_ms must be in [0.5, 1000]")
        fmt = request.params.get("format", "collapsed")
        if fmt not in ("collapsed", "chrome"):
            return _reject(400, "format must be 'collapsed' or 'chrome'")
        if self._profiler is not None:
            return _reject(409, "a profile capture is already running")
        from repro.obs.sampling import SamplingProfiler

        profiler = SamplingProfiler(interval_s=interval_ms / 1000.0)
        self._profiler = profiler
        try:
            profiler.start()
            await asyncio.sleep(seconds)
            profiler.stop()
        finally:
            self._profiler = None
        self.recorder.incr("serve.profile.captures")
        # Self-accounting: the sampler reports the CPU it burned, so
        # callers (and the perf gate) can judge the capture's true cost
        # without a noisy A/B throughput comparison.
        cost_headers = (
            ("X-Profile-Samples", str(profiler.sample_count)),
            ("X-Profile-Cpu-Seconds", f"{profiler.cpu_seconds:.6f}"),
        )
        if fmt == "chrome":
            payload, extra = profiler.chrome_trace(), cost_headers
        else:
            payload = profiler.collapsed().encode("utf-8")
            extra = cost_headers + (
                ("Content-Type", "text/plain; charset=utf-8"),
            )
        return self._finish_request(
            200, payload, extra,
            rid=rid, started=started, method="POST",
            path="/admin/profile", track_slo=False,
        )

    async def _profile_to_file(self, seconds: float = 10.0) -> Optional[str]:
        """SIGUSR2 capture: sample for ``seconds``, write collapsed stacks.

        The output lands in the working directory as
        ``spc-profile-<pid>-<n>.collapsed``; failures (and the path on
        success) go to the structured server log, never to the request
        path.
        """
        if self._profiler is not None:
            if self.request_log is not None:
                self.request_log.log_server("profile_busy")
            return None
        from repro.obs.sampling import SamplingProfiler

        profiler = SamplingProfiler()
        self._profiler = profiler
        try:
            profiler.start()
            await asyncio.sleep(seconds)
            profiler.stop()
        finally:
            self._profiler = None
        self._profile_seq += 1
        path = f"spc-profile-{os.getpid()}-{self._profile_seq}.collapsed"
        try:
            profiler.write_collapsed(path)
        except OSError as exc:
            if self.request_log is not None:
                self.request_log.log_server(
                    "profile_failed", error=str(exc)
                )
            return None
        self.recorder.incr("serve.profile.captures")
        if self.request_log is not None:
            self.request_log.log_server(
                "profile_written",
                path=path,
                samples=profiler.sample_count,
            )
        return path

    def _handle_health(self) -> Response:
        slo_status, breaches, _ = self._slo_state()
        if self.breaker.open:
            breaches = list(breaches) + ["circuit_open"]
        if self._draining:
            status_text, http_status = "draining", 503
        elif self.breaker.open:
            # Degraded, but still answering: with a fallback configured
            # queries keep flowing (slowly), so readiness — not
            # liveness — is what flips.
            status_text, http_status = "degraded", 503
        elif slo_status == "degraded":
            status_text, http_status = "degraded", 503
        else:
            status_text, http_status = "ok", 200
        payload = {
            "status": status_text,
            "index": self._index_metadata(),
            "inflight": self._inflight,
            "uptime_seconds": time.perf_counter() - self._started_at,
            "slo": {"status": slo_status, "breaches": breaches},
            "breaker": self.breaker.snapshot(),
            "fallback": {
                "configured": self.fallback is not None,
                "active": self.fallback is not None and self.breaker.open,
            },
        }
        return http_status, payload, ()

    def _handle_metrics(self, request: Optional[Request] = None) -> Response:
        rec = self.recorder
        rec.gauge("serve.queue.depth", self.queue_depth)
        rec.gauge("serve.connections.active", len(self._connections))
        rec.gauge("serve.cache.size", len(self.cache))
        rec.gauge("serve.cache.hit_rate", self.cache.hit_rate)
        if self.updates is not None:
            state = self.updates.live_index.state
            rec.gauge("live.overlay.entries", state.entries)
            rec.gauge(
                "live.overlay.poisoned_vertices", state.poisoned_vertices
            )
            rec.gauge("live.epoch", state.epoch)
            rec.gauge("live.seqno", state.seqno)
            if self._last_update_visible is not None:
                rec.gauge(
                    "live.staleness_s",
                    time.perf_counter() - self._last_update_visible,
                )
        wants_text = False
        if request is not None:
            fmt = request.params.get("format")
            if fmt is not None:
                wants_text = fmt == "prometheus"
            else:
                accept = request.headers.get("accept", "")
                wants_text = (
                    "text/plain" in accept or "openmetrics" in accept
                )
        if wants_text:
            text = render_prometheus(rec.metrics_snapshot())
            return (
                200,
                text.encode("utf-8"),
                (("Content-Type", PROMETHEUS_CONTENT_TYPE),),
            )
        return 200, rec.metrics_snapshot(), ()

    def _handle_trace(self, request: Request) -> Response:
        """``POST /admin/trace``: read (and optionally clear) the ring.

        ``format=chrome`` (default) returns a single-fragment merged
        Chrome trace payload, viewable as-is; ``format=fragment``
        returns the raw span fragment (pid, role, wall-clock anchor,
        spans) — the form the fleet router collects from every worker
        and merges into one cross-process trace.  ``clear=1`` drains
        the ring so the next capture starts fresh.
        """
        if request.method != "POST":
            return (
                405,
                {"error": "trace requires POST"},
                (("Allow", "POST"),),
            )
        if self.tracer is None:
            return (
                409,
                {"error": "tracing is disabled (trace_buffer = 0)"},
                (),
            )
        fmt = request.params.get("format", "chrome")
        if fmt not in ("chrome", "fragment"):
            return (
                400, {"error": "format must be 'chrome' or 'fragment'"}, ()
            )
        clear = request.params.get("clear", "").lower() in _TRUTHY
        fragment = self.tracer.fragment(clear=clear)
        if fmt == "fragment":
            return 200, fragment, ()
        return 200, merge_trace_fragments([fragment]), ()

    def _top_pairs_block(self) -> dict:
        """The workload-analytics block of ``/stats``.

        ``sketch`` is the full serialized Space-Saving state (what the
        fleet router merges across workers); ``top`` is a rendered
        heaviest-first prefix; ``cache_attribution`` splits result-
        cache lookups by whether the pair was already a tracked heavy
        hitter — a hot set that misses the cache is sized wrong.
        """
        sketch = self.top_pairs
        hot_lookups = self._hot_hits + self._hot_misses
        tail_lookups = self._tail_hits + self._tail_misses
        return {
            "sketch": sketch.to_dict(),
            "top": [
                {"pair": list(key), "count": count, "error": error}
                for key, count, error in sketch.top(20)
            ],
            "cache_attribution": {
                "hot": {
                    "hits": self._hot_hits,
                    "misses": self._hot_misses,
                    "hit_rate": (
                        self._hot_hits / hot_lookups if hot_lookups else 0.0
                    ),
                },
                "tail": {
                    "hits": self._tail_hits,
                    "misses": self._tail_misses,
                    "hit_rate": (
                        self._tail_hits / tail_lookups
                        if tail_lookups
                        else 0.0
                    ),
                },
            },
        }

    def _handle_stats(self) -> Response:
        slo_status, breaches, window = self._slo_state()
        payload = {
            "index": self._index_metadata(),
            "window": window,
            "slo": {
                "status": slo_status,
                "breaches": breaches,
                "p99_ms": self.slo_policy.p99_ms or None,
                "max_error_rate": self.slo_policy.max_error_rate or None,
            },
            "cache": self.cache.snapshot(),
            "breaker": self.breaker.snapshot(),
            "uptime_seconds": time.perf_counter() - self._started_at,
        }
        if self.fault_plan is not None:
            payload["faults"] = self.fault_plan.snapshot()
        if self.batcher is not None:
            payload["batcher"] = {
                "batches_flushed": self.batcher.batches_flushed,
                "queries_batched": self.batcher.queries_batched,
                "pending": self.batcher.pending_count,
            }
        if self.updates is not None:
            live = self.updates.stats()
            if self._last_update_visible is not None:
                live["staleness_s"] = (
                    time.perf_counter() - self._last_update_visible
                )
            freshness = self.recorder.histograms.get("live.freshness_ms")
            if freshness is not None:
                live["freshness_ms"] = freshness.snapshot()
            payload["live"] = live
        if self.top_pairs is not None:
            payload["top_pairs"] = self._top_pairs_block()
        if self.tracer is not None:
            payload["trace"] = {
                "buffered": len(self.tracer),
                "recorded": self.tracer.recorded,
                "capacity": self.tracer.capacity,
            }
        return 200, payload, ()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Admitted-but-unanswered requests (the shedding signal)."""
        return self._inflight

    def _parse_query(
        self, request: Request
    ) -> Tuple[
        Optional[List[Tuple[int, int]]], Optional[Tuple[int, int]], bool
    ]:
        """Returns ``(pairs, single, explain)``; one of the first two set."""
        if request.method == "POST":
            payload = request.json()
            if not isinstance(payload, dict):
                raise HTTPProtocolError("query body must be a JSON object")
            explain = bool(payload.get("explain", False))
            if "pairs" in payload:
                raw = payload["pairs"]
                if not isinstance(raw, list):
                    raise HTTPProtocolError("'pairs' must be a list")
                pairs = []
                for item in raw:
                    if (
                        not isinstance(item, (list, tuple))
                        or len(item) != 2
                    ):
                        raise HTTPProtocolError(
                            "each pair must be [source, target]"
                        )
                    pairs.append((int(item[0]), int(item[1])))
                return pairs, None, explain
            try:
                return (
                    None,
                    (int(payload["source"]), int(payload["target"])),
                    explain,
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise HTTPProtocolError(
                    "query body needs integer 'source' and 'target'"
                ) from exc
        explain = (
            request.params.get("explain", "").lower() in _TRUTHY
        )
        try:
            return (
                None,
                (
                    int(request.params["source"]),
                    int(request.params["target"]),
                ),
                explain,
            )
        except (KeyError, ValueError) as exc:
            raise HTTPProtocolError(
                "query needs integer 'source' and 'target' parameters"
            ) from exc

    def _dispatch_query(self, request: Request, rid: str, trace=None):
        """Admit (or reject) one ``/query`` synchronously.

        Cache hits, malformed requests, and shed responses come back as
        ready tuples; an admitted miss submits its scan *now* and
        returns the :meth:`_finish` coroutine that waits for it.
        """
        started = time.perf_counter()
        try:
            pairs, single, explain = self._parse_query(request)
        except HTTPProtocolError as exc:
            self.recorder.incr("serve.errors.request")
            return self._finish_request(
                400,
                {"error": str(exc)},
                (),
                rid=rid,
                started=started,
                method=request.method,
                error=str(exc),
                trace=trace,
            )
        if single is not None:
            return self._query_entry(
                *single, rid, explain=explain, trace=trace
            )
        if self._draining:
            self.recorder.incr("serve.shed.draining")
            return self._finish_request(
                503,
                {"error": "draining"},
                _RETRY_AFTER,
                rid=rid,
                started=started,
                method=request.method,
                trace=trace,
            )
        if self.queue_depth + len(pairs) > self.config.queue_high_water:
            self.recorder.incr("serve.shed", len(pairs))
            status, payload, extra = self._overloaded()
            return self._finish_request(
                status,
                payload,
                extra,
                rid=rid,
                started=started,
                method=request.method,
                trace=trace,
            )
        return self._answer_pairs(pairs, rid, started, explain, trace)

    def _overloaded(self) -> Response:
        return (
            503,
            {
                "error": "overloaded",
                "queue_depth": self.queue_depth,
                "high_water": self.config.queue_high_water,
            },
            _RETRY_AFTER,
        )

    def _query_entry(
        self,
        source: int,
        target: int,
        rid: str,
        *,
        explain: bool = False,
        trace=None,
    ):
        """Drain/shed/cache-check one pair; ready tuple or waiter.

        200 payloads come back as pre-serialized bytes (see
        :func:`encode_result_bytes`) unless ``explain`` asked for the
        annotated dict form."""
        started = time.perf_counter()
        if self._draining:
            self.recorder.incr("serve.shed.draining")
            return self._finish_request(
                503,
                {"error": "draining"},
                _RETRY_AFTER,
                rid=rid,
                started=started,
                source=source,
                target=target,
                trace=trace,
            )
        if self.queue_depth >= self.config.queue_high_water:
            self.recorder.incr("serve.shed")
            status, payload, extra = self._overloaded()
            return self._finish_request(
                status,
                payload,
                extra,
                rid=rid,
                started=started,
                source=source,
                target=target,
                trace=trace,
            )
        cached = self.cache.get(source, target)
        if self.top_pairs is not None:
            # Workload analytics: count the pair and attribute this
            # cache lookup to the heavy-hitter set or the tail (the
            # offer's membership return is free).  The symmetric key is
            # built inline — this runs once per query.
            key = (
                (source, target) if source <= target
                else (target, source)
            )
            if self.top_pairs.offer(key):
                if cached is not None:
                    self._hot_hits += 1
                else:
                    self._hot_misses += 1
            elif cached is not None:
                self._tail_hits += 1
            else:
                self._tail_misses += 1
        if cached is not None:
            if explain:
                payload = encode_result(source, target, cached)
                payload["explain"] = self._explain_counters(
                    source, target, cache_hit=True, meta=None
                )
                payload["explain"]["request_id"] = rid
            else:
                payload = encode_result_bytes(source, target, cached)
            return self._finish_request(
                200,
                payload,
                (),
                rid=rid,
                started=started,
                source=source,
                target=target,
                cache_hit=True,
                trace=trace,
            )
        return self._admit(source, target, rid, started, explain, trace)

    def _admit(
        self,
        source: int,
        target: int,
        rid: str,
        started: float,
        explain: bool,
        trace=None,
    ):
        """Take a queue slot and start the scan; returns the waiter."""
        self._inflight += 1
        self.recorder.gauge_max("serve.queue.depth.max", self._inflight)
        meta = (
            {}
            if (
                explain
                or self.request_log is not None
                or trace is not None
            )
            else None
        )
        if trace is not None and meta is not None:
            # The coalescer parents its scan_batch span to the request
            # span created in _finish_request — hand it the ids now.
            meta["trace"] = (trace[0], trace[1])
        future, via_fallback = self._compute(source, target, meta)
        return _Waiter(
            self,
            future,
            source,
            target,
            rid,
            started,
            meta,
            explain,
            via_fallback,
            trace,
        )

    async def _answer_pairs(
        self,
        pairs: List[Tuple[int, int]],
        rid: str,
        started: float,
        explain: bool,
        trace=None,
    ) -> Response:
        """A POST batch: each pair rides the normal entry path with a
        derived id (``<rid>/<slot>``), so batch members correlate in
        the logs while the envelope keeps the client's id.  On a traced
        request, each member gets its own span parented under the
        envelope's request span."""
        results = await asyncio.gather(
            *(
                self._answer_single(
                    s,
                    t,
                    f"{rid}/{slot}",
                    explain,
                    None
                    if trace is None
                    else (trace[0], new_span_id(), trace[1]),
                )
                for slot, (s, t) in enumerate(pairs)
            )
        )
        worst = max(status for status, _, _ in results)
        return self._finish_request(
            worst,
            {"results": [payload for _, payload, _ in results]},
            _RETRY_AFTER if worst == 503 else (),
            rid=rid,
            started=started,
            method="POST",
            track_slo=False,  # members were tracked individually
            trace=trace,
        )

    async def _answer_single(
        self, source: int, target: int, rid: str, explain: bool, trace=None
    ) -> Response:
        """One pair of a POST batch, payload as a JSON-able dict."""
        entry = self._query_entry(
            source, target, rid, explain=explain, trace=trace
        )
        status, payload, extra = (
            entry if type(entry) is tuple else await entry
        )
        if type(payload) is bytes:
            payload = json.loads(payload)
        return status, payload, extra

    async def _finish(self, w: "_Waiter") -> Response:
        # wait_for on the bare future: a deadline cancels only this
        # request's future — the batcher skips done futures when its
        # scan resolves, so batch-mates are unaffected.
        try:
            result = await asyncio.wait_for(
                w.future,
                timeout=self.config.request_timeout_ms / 1000.0,
            )
        except asyncio.TimeoutError:
            self.recorder.incr("serve.timeouts")
            return self._finish_request(
                504,
                {
                    "error": "deadline exceeded",
                    "timeout_ms": self.config.request_timeout_ms,
                    "source": w.source,
                    "target": w.target,
                },
                (),
                rid=w.rid,
                started=w.started,
                source=w.source,
                target=w.target,
                meta=w.meta,
                error="deadline exceeded",
                trace=w.trace,
            )
        except ReproError as exc:
            self.recorder.incr("serve.errors.query")
            return self._query_error(w, exc)
        except Exception as exc:  # noqa: BLE001 — scan-path crash
            return self._scan_failure(w, exc)
        finally:
            self._inflight -= 1
            self.recorder.observe(
                "serve.latency_seconds", time.perf_counter() - w.started
            )
        return self._finish_ok(w, result)

    def _finish_done(self, w: "_Waiter") -> Response:
        """Finish a waiter whose future already resolved — no await.

        The synchronous twin of :meth:`_finish` for the write loop's
        peek path; the deadline cannot fire on an answer that is
        already here."""
        self._inflight -= 1
        self.recorder.observe(
            "serve.latency_seconds", time.perf_counter() - w.started
        )
        exc = w.future.exception()
        if exc is not None:
            if isinstance(exc, ReproError):
                self.recorder.incr("serve.errors.query")
                return self._query_error(w, exc)
            return self._scan_failure(w, exc)
        return self._finish_ok(w, w.future.result())

    def _query_error(self, w: "_Waiter", exc: ReproError) -> Response:
        return self._finish_request(
            400,
            {"error": str(exc)},
            (),
            rid=w.rid,
            started=w.started,
            source=w.source,
            target=w.target,
            meta=w.meta,
            error=str(exc),
            trace=w.trace,
        )

    def _scan_failure(self, w: "_Waiter", exc: Exception) -> Response:
        """A scan-path crash (not a client error): 500, count it
        against the circuit breaker, batch-mates unaffected."""
        self.recorder.incr("serve.errors.scan")
        detail = str(exc) or type(exc).__name__
        if self.breaker.record_failure():
            self.recorder.incr("serve.breaker.trips")
            if self.request_log is not None:
                self.request_log.log_server(
                    "breaker_open",
                    consecutive_failures=self.breaker.threshold,
                    last_error=detail,
                )
        return self._finish_request(
            500,
            {
                "error": "scan failed",
                "source": w.source,
                "target": w.target,
            },
            (),
            rid=w.rid,
            started=w.started,
            source=w.source,
            target=w.target,
            meta=w.meta,
            error=detail,
            trace=w.trace,
        )

    def _finish_ok(self, w: "_Waiter", result: QueryResult) -> Response:
        self.cache.put(w.source, w.target, result)
        self.recorder.incr("serve.responses.ok")
        if w.fallback:
            # Fallback answers must not mask a broken index: only
            # index-path successes close the breaker.
            self.recorder.incr("serve.fallback.ok")
        else:
            self.breaker.record_success()
        # A disabled cache performs no lookup — don't count one.
        cache_hit = False if self.cache.capacity else None
        labels_scanned = None
        if w.explain:
            payload = encode_result(w.source, w.target, result)
            explain_fields = self._explain_counters(
                w.source, w.target, cache_hit=False, meta=w.meta
            )
            explain_fields["request_id"] = w.rid
            payload["explain"] = explain_fields
            labels_scanned = explain_fields.get("labels_scanned")
        else:
            payload = encode_result_bytes(w.source, w.target, result)
        return self._finish_request(
            200,
            payload,
            (),
            rid=w.rid,
            started=w.started,
            source=w.source,
            target=w.target,
            cache_hit=cache_hit,
            meta=w.meta,
            labels_scanned=labels_scanned,
            trace=w.trace,
        )

    def _compute(
        self, source: int, target: int, meta: Optional[dict]
    ) -> Tuple["asyncio.Future", bool]:
        """One answer future, plus whether it rides the fallback.

        With the breaker open and a fallback index configured, queries
        route to the fallback's own executor (correct but slow) — the
        breaker still lets one probe per cooldown through the real
        index so it can close itself once the index heals.
        """
        if self.fallback is not None and self.breaker.prefer_fallback():
            self.recorder.incr("serve.fallback.queries")
            if meta is not None:
                meta["batch_size"] = 1
                meta["flush_reason"] = "fallback"
                meta["fallback"] = True
            future = asyncio.get_running_loop().run_in_executor(
                self._fallback_executor, self.fallback.query, source, target
            )
            return future, True
        if self.batcher is not None:
            return self.batcher.submit(source, target, meta), False
        if meta is not None:
            meta["batch_size"] = 1
            meta["flush_reason"] = "uncoalesced"
        future = asyncio.get_running_loop().run_in_executor(
            self._executor, self.index.query, source, target
        )
        return future, False

"""Workload-replay load generator for the SPC query server.

:func:`run_workload` opens ``concurrency`` keep-alive connections and
replays a pairs workload through them closed-loop (each worker sends
its next query as soon as the previous answer lands — the access
pattern that server-side micro-batching converts into full batches).
Every response is timed into a :class:`repro.obs.Histogram` and
classified (ok / shed / timeout / error), and the resulting
:class:`LoadReport` renders through
:func:`repro.bench.report.render_load_report` next to the offline
profiling tables.

With ``collect_results=True`` the decoded answers are kept in arrival
order per request slot, so callers (the CI smoke job, the serving
benchmark) can verify byte-for-byte agreement with
:meth:`SPCIndex.query`.

The client also exercises the server's request-correlation contract:
every response must carry an ``X-Request-Id`` header, and with
``send_request_ids=True`` each request ships a deterministic client id
that the server must echo verbatim.  A missing or mismatched echo is
counted in :attr:`LoadReport.id_errors` — a protocol error, because it
means log records cannot be correlated with the responses users saw.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import LATENCY_BUCKETS_SECONDS, Histogram
from repro.serve.http import HTTPProtocolError, read_head
from repro.types import Vertex

Pair = Tuple[Vertex, Vertex]

#: One decoded answer: (source, target, status, distance, count).
#: ``distance`` is ``None`` for disconnected pairs and non-200 statuses.
Answer = Tuple[int, int, int, Optional[float], Optional[int]]


@dataclass
class LoadReport:
    """Outcome of one load-generator run against a live server."""

    num_requests: int
    concurrency: int
    wall_seconds: float
    ok: int = 0
    shed: int = 0
    timeouts: int = 0
    errors: int = 0
    #: Responses whose ``X-Request-Id`` echo was missing or did not
    #: match the id the client sent (correlation protocol errors).
    id_errors: int = 0
    latency: Histogram = field(
        default_factory=lambda: Histogram(LATENCY_BUCKETS_SECONDS)
    )
    status_counts: Dict[int, int] = field(default_factory=dict)
    results: Optional[List[Answer]] = None
    #: Server-assigned (or echoed) request id per request slot, kept
    #: when ``collect_results=True``.
    request_ids: Optional[List[Optional[str]]] = None

    @property
    def qps(self) -> float:
        """Completed requests (any status) per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.num_requests / self.wall_seconds

    @property
    def goodput(self) -> float:
        """Successfully answered requests per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.ok / self.wall_seconds


def _classify(report: LoadReport, status: int) -> None:
    report.status_counts[status] = report.status_counts.get(status, 0) + 1
    if status == 200:
        report.ok += 1
    elif status == 503:
        report.shed += 1
    elif status == 504:
        report.timeouts += 1
    else:
        report.errors += 1


def split_strided(items: Sequence, ways: int) -> List[List]:
    """Deal ``items`` round-robin into ``ways`` lists (order-preserving
    per list), so every worker sees the same mix of the workload."""
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    return [list(items[lane::ways]) for lane in range(ways)]


async def _read_response(reader) -> Tuple[int, Optional[str], bytes]:
    """One ``(status, request id, body)`` with minimal per-response work.

    The load generator usually shares a core with the server under
    test, so client-side parsing cost shows up directly in measured
    QPS; this skips the header dict that
    :func:`repro.serve.http.read_raw_response` builds.  The server
    always emits the canonical ``X-Request-Id:`` spelling, so an
    exact-case find suffices here.
    """
    head = await read_head(reader)
    if head is None:
        raise HTTPProtocolError("connection closed before status line")
    try:
        status = int(head[9:12])
    except ValueError:
        raise HTTPProtocolError(
            f"malformed status line {head[:32]!r}"
        ) from None
    rid: Optional[str] = None
    mark = head.find(b"X-Request-Id:")
    if mark >= 0:
        rid = (
            head[mark + 13 : head.index(b"\r", mark)]
            .strip()
            .decode("latin-1")
        )
    mark = head.find(b"Content-Length:")
    if mark < 0:
        return status, rid, b""
    length = int(head[mark + 15 : head.index(b"\r", mark)])
    body = await reader.readexactly(length) if length else b""
    return status, rid, body


async def _worker(
    host: str,
    port: int,
    slots: Sequence[Tuple[int, Pair]],
    report: LoadReport,
    pipeline: int,
    send_request_ids: bool,
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    # Request bytes are prebuilt so the timed loop spends its cycles on
    # the wire, not on string formatting (the client shares cores with
    # the server in tests and benchmarks).  Client ids are derived from
    # the global request slot, so they are deterministic per workload
    # and unique across workers.
    sent_ids = (
        [f"load-{slot:06x}" for slot, _ in slots]
        if send_request_ids
        else None
    )
    requests = [
        (
            f"GET /query?source={source}&target={target} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            + (
                f"X-Request-Id: {sent_ids[lane_idx]}\r\n"
                if sent_ids is not None
                else ""
            )
            + "\r\n"
        ).encode("latin-1")
        for lane_idx, (_, (source, target)) in enumerate(slots)
    ]
    observe = report.latency.observe
    perf_counter = time.perf_counter
    window: deque = deque()  # send times of in-flight requests, in order
    sent = 0
    try:
        for lane_idx, (slot, (source, target)) in enumerate(slots):
            # Sliding window: keep up to ``pipeline`` requests on the
            # wire; responses come back in order on the connection.
            while sent < len(slots) and len(window) < pipeline:
                writer.write(requests[sent])
                window.append(perf_counter())
                sent += 1
            await writer.drain()
            status, rid, body = await _read_response(reader)
            observe(perf_counter() - window.popleft())
            _classify(report, status)
            if rid is None or (
                sent_ids is not None and rid != sent_ids[lane_idx]
            ):
                report.id_errors += 1
            if report.request_ids is not None:
                report.request_ids[slot] = rid
            if report.results is not None:
                payload = json.loads(body) if body else None
                if status == 200 and isinstance(payload, dict):
                    report.results[slot] = (
                        source,
                        target,
                        status,
                        payload.get("distance"),
                        payload.get("count"),
                    )
                else:
                    report.results[slot] = (
                        source, target, status, None, None
                    )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_workload(
    host: str,
    port: int,
    pairs: Sequence[Pair],
    *,
    concurrency: int = 8,
    repeats: int = 1,
    pipeline: int = 1,
    collect_results: bool = False,
    send_request_ids: bool = False,
) -> LoadReport:
    """Replay ``pairs`` (``repeats`` times) against a running server.

    ``pipeline`` is the HTTP/1.1 pipelining depth per connection: each
    worker keeps up to that many requests on the wire before reading
    the next in-order response.  Depth 1 is strict request/response;
    deeper windows are the standard load-generator way to saturate a
    server without spawning hundreds of connections.

    With ``send_request_ids=True`` each request carries a
    deterministic ``X-Request-Id`` (``load-<slot hex>``) that the
    server must echo; see :attr:`LoadReport.id_errors`.
    """
    requests: List[Pair] = list(pairs) * max(1, repeats)
    concurrency = max(1, min(concurrency, len(requests) or 1))
    report = LoadReport(
        num_requests=len(requests),
        concurrency=concurrency,
        wall_seconds=0.0,
        results=[None] * len(requests) if collect_results else None,
        request_ids=(
            [None] * len(requests) if collect_results else None
        ),
    )
    lanes = split_strided(list(enumerate(requests)), concurrency)
    pipeline = max(1, pipeline)
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _worker(host, port, lane, report, pipeline, send_request_ids)
            for lane in lanes
            if lane
        )
    )
    report.wall_seconds = time.perf_counter() - started
    return report


def replay(
    host: str,
    port: int,
    pairs: Sequence[Pair],
    *,
    concurrency: int = 8,
    repeats: int = 1,
    pipeline: int = 1,
    collect_results: bool = False,
    send_request_ids: bool = False,
) -> LoadReport:
    """Synchronous wrapper around :func:`run_workload`."""
    return asyncio.run(
        run_workload(
            host,
            port,
            pairs,
            concurrency=concurrency,
            repeats=repeats,
            pipeline=pipeline,
            collect_results=collect_results,
            send_request_ids=send_request_ids,
        )
    )

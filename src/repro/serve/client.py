"""Workload-replay load generator for the SPC query server.

:func:`run_workload` opens ``concurrency`` keep-alive connections and
replays a pairs workload through them closed-loop (each worker sends
its next query as soon as the previous answer lands — the access
pattern that server-side micro-batching converts into full batches).
Every response is timed into a :class:`repro.obs.Histogram` and
classified (ok / shed / timeout / error), and the resulting
:class:`LoadReport` renders through
:func:`repro.bench.report.render_load_report` next to the offline
profiling tables.

With ``collect_results=True`` the decoded answers are kept in arrival
order per request slot, so callers (the CI smoke job, the serving
benchmark) can verify byte-for-byte agreement with
:meth:`SPCIndex.query`.

The client also exercises the server's request-correlation contract:
every response must carry an ``X-Request-Id`` header, and with
``send_request_ids=True`` each request ships a deterministic client id
that the server must echo verbatim.  A missing or mismatched echo is
counted in :attr:`LoadReport.id_errors` — a protocol error, because it
means log records cannot be correlated with the responses users saw.

**Fault tolerance.**  Queries are idempotent GETs, so the client may
retry them freely.  A mid-response connection reset (the server died,
or a chaos ``conn.reset`` fault fired) is recorded in
:attr:`LoadReport.transport_errors`; the worker reconnects and resends
whatever was in flight, so the replay continues.  With a
:class:`RetryPolicy` the client additionally retries retryable
failures (500/502/503/504 and transport errors) with capped
exponential backoff and full jitter, honouring ``Retry-After`` on
sheds; retries draw from a shared budget and exhausted requests are
counted in :attr:`LoadReport.giveups`.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import LATENCY_BUCKETS_SECONDS, Histogram, TraceContext
from repro.serve.http import HTTPProtocolError, read_head
from repro.types import Vertex

Pair = Tuple[Vertex, Vertex]

#: One decoded answer: (source, target, status, distance, count).
#: ``distance`` is ``None`` for disconnected pairs and non-200 statuses.
#: Status 0 marks a request that never got a response (transport
#: failure after every permitted resend).
Answer = Tuple[int, int, int, Optional[float], Optional[int]]

#: Statuses worth retrying: the server said "not now" (shed, deadline)
#: or crashed on this one request (scan failure) — never 4xx, which
#: would fail identically on every attempt.
RETRYABLE_STATUSES = frozenset({500, 502, 503, 504})

#: Without a :class:`RetryPolicy`, how many times a request lost to a
#: connection reset is resent before being reported as status 0.
_TRANSPORT_RESENDS = 5


@dataclass(frozen=True)
class RetryPolicy:
    """Client retry policy: capped exponential backoff with full jitter.

    The delay before attempt ``n+1`` is drawn uniformly from
    ``[0, min(max_delay_s, base_delay_s * 2**(n-1))]`` — full jitter,
    the variant that decorrelates a thundering herd of retrying
    clients.  A ``Retry-After`` header on a 503 acts as a floor when
    ``honour_retry_after`` is set: the server's estimate of when
    capacity frees up beats the client's guess.
    """

    #: Total attempts per request (first try included); 1 disables
    #: status-based retries but keeps transport-reset resends.
    max_attempts: int = 3
    #: First backoff delay; doubles per attempt up to ``max_delay_s``.
    base_delay_s: float = 0.05
    max_delay_s: float = 1.0
    #: Total retries allowed across the whole run, shared by every
    #: worker (0 = unbounded).  Protects wall-clock under a server
    #: that fails everything.
    budget: int = 0
    #: Deadline on each attempt's response read; 0 disables.  A timed
    #: out attempt abandons the connection (its in-order stream is no
    #: longer trustworthy) and counts as a transport error.
    attempt_timeout_s: float = 0.0
    #: Treat a 503 ``Retry-After`` header as a floor on the backoff.
    honour_retry_after: bool = True
    #: Seed of the jitter RNG (deterministic replays in tests).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("retry delays must be >= 0")
        if self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        if self.attempt_timeout_s < 0:
            raise ValueError("attempt_timeout_s must be >= 0")

    def delay_s(
        self,
        attempt: int,
        rng: "random.Random",
        retry_after: Optional[float] = None,
    ) -> float:
        """The backoff before retrying after (1-based) ``attempt``."""
        cap = min(
            self.max_delay_s, self.base_delay_s * (2 ** (attempt - 1))
        )
        delay = rng.uniform(0.0, cap)
        if retry_after is not None and self.honour_retry_after:
            delay = max(delay, retry_after)
        return delay


class _RetryBudget:
    """Run-wide retry allowance shared across workers (single loop,
    so a plain counter is race-free)."""

    __slots__ = ("limit", "used")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def take(self) -> bool:
        if self.limit and self.used >= self.limit:
            return False
        self.used += 1
        return True


@dataclass
class LoadReport:
    """Outcome of one load-generator run against a live server."""

    num_requests: int
    concurrency: int
    wall_seconds: float
    ok: int = 0
    shed: int = 0
    timeouts: int = 0
    errors: int = 0
    #: Responses whose ``X-Request-Id`` echo was missing or did not
    #: match the id the client sent (correlation protocol errors).
    id_errors: int = 0
    #: Connection-level failures survived (mid-response resets, refused
    #: reconnects, per-attempt timeouts); each one cost a reconnect.
    transport_errors: int = 0
    #: Extra attempts spent by the :class:`RetryPolicy`.
    retries: int = 0
    #: Requests abandoned after exhausting attempts or the retry
    #: budget (their final status still counts in the totals above).
    giveups: int = 0
    latency: Histogram = field(
        default_factory=lambda: Histogram(LATENCY_BUCKETS_SECONDS)
    )
    status_counts: Dict[int, int] = field(default_factory=dict)
    results: Optional[List[Answer]] = None
    #: Server-assigned (or echoed) request id per request slot, kept
    #: when ``collect_results=True``.
    request_ids: Optional[List[Optional[str]]] = None

    @property
    def qps(self) -> float:
        """Completed requests (any status) per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.num_requests / self.wall_seconds

    @property
    def goodput(self) -> float:
        """Successfully answered requests per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.ok / self.wall_seconds

    @property
    def availability(self) -> float:
        """Fraction of requests answered 200 (1.0 before any request)."""
        if self.num_requests <= 0:
            return 1.0
        return self.ok / self.num_requests


def _classify(report: LoadReport, status: int) -> None:
    report.status_counts[status] = report.status_counts.get(status, 0) + 1
    if status == 200:
        report.ok += 1
    elif status == 503:
        report.shed += 1
    elif status == 504:
        report.timeouts += 1
    else:
        report.errors += 1


def split_strided(items: Sequence, ways: int) -> List[List]:
    """Deal ``items`` round-robin into ``ways`` lists (order-preserving
    per list), so every worker sees the same mix of the workload."""
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    return [list(items[lane::ways]) for lane in range(ways)]


async def _read_response(
    reader,
) -> Tuple[int, Optional[str], Optional[float], bytes]:
    """One ``(status, request id, retry-after, body)`` with minimal
    per-response work.

    The load generator usually shares a core with the server under
    test, so client-side parsing cost shows up directly in measured
    QPS; this skips the header dict that
    :func:`repro.serve.http.read_raw_response` builds.  The server
    always emits the canonical ``X-Request-Id:`` / ``Retry-After:``
    spellings, so exact-case finds suffice here.
    """
    head = await read_head(reader)
    if head is None:
        raise HTTPProtocolError("connection closed before status line")
    try:
        status = int(head[9:12])
    except ValueError:
        raise HTTPProtocolError(
            f"malformed status line {head[:32]!r}"
        ) from None
    rid: Optional[str] = None
    mark = head.find(b"X-Request-Id:")
    if mark >= 0:
        rid = (
            head[mark + 13 : head.index(b"\r", mark)]
            .strip()
            .decode("latin-1")
        )
    retry_after: Optional[float] = None
    if status == 503:
        mark = head.find(b"Retry-After:")
        if mark >= 0:
            try:
                retry_after = float(
                    head[mark + 12 : head.index(b"\r", mark)].strip()
                )
            except ValueError:
                pass
    mark = head.find(b"Content-Length:")
    if mark < 0:
        return status, rid, retry_after, b""
    length = int(head[mark + 15 : head.index(b"\r", mark)])
    body = await reader.readexactly(length) if length else b""
    return status, rid, retry_after, body


async def _worker(
    host: str,
    port: int,
    slots: Sequence[Tuple[int, Pair]],
    report: LoadReport,
    pipeline: int,
    send_request_ids: bool,
    policy: Optional[RetryPolicy],
    budget: Optional[_RetryBudget],
    trace_every: int = 0,
) -> None:
    if not slots:
        return

    def _trace_header(slot: int) -> str:
        """A client-rooted sampled ``traceparent`` for 1-in-N slots.

        The server honours inbound sampled contexts unconditionally,
        so these requests are traced end to end regardless of the
        server's own sampling rate — the client-driven way to light up
        ``/admin/trace`` during a capture window.
        """
        if not trace_every or slot % trace_every:
            return ""
        ctx = TraceContext.generate()
        return f"traceparent: {ctx.to_header()}\r\n"

    # Request bytes are prebuilt so the timed loop spends its cycles on
    # the wire, not on string formatting (the client shares cores with
    # the server in tests and benchmarks).  Client ids are derived from
    # the global request slot, so they are deterministic per workload
    # and unique across workers — and stable across retries, so the
    # server's log shows every attempt under one id.
    sent_ids = (
        [f"load-{slot:06x}" for slot, _ in slots]
        if send_request_ids
        else None
    )
    requests = [
        (
            f"GET /query?source={source}&target={target} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            + (
                f"X-Request-Id: {sent_ids[lane_idx]}\r\n"
                if sent_ids is not None
                else ""
            )
            + _trace_header(slot)
            + "\r\n"
        ).encode("latin-1")
        for lane_idx, (slot, (source, target)) in enumerate(slots)
    ]
    observe = report.latency.observe
    perf_counter = time.perf_counter
    rng = (
        random.Random(f"{policy.seed}:{slots[0][0]}")
        if policy is not None
        else None
    )
    attempts = [0] * len(slots)  # responses received per lane
    resends = [0] * len(slots)  # transport-loss resends per lane
    pending: deque = deque(range(len(slots)))
    window: deque = deque()  # (lane idx, send time) of in-flight sends
    timeout_s = policy.attempt_timeout_s if policy is not None else 0.0

    def record(lane_idx: int, status: int, body: bytes) -> None:
        slot, (source, target) = slots[lane_idx]
        if report.results is None:
            return
        payload = json.loads(body) if body else None
        if status == 200 and isinstance(payload, dict):
            report.results[slot] = (
                source,
                target,
                status,
                payload.get("distance"),
                payload.get("count"),
            )
        else:
            report.results[slot] = (source, target, status, None, None)

    def drop_inflight() -> None:
        """The connection died: requeue what it still owed us.

        Idempotent GETs are safe to resend.  Each lost request burns
        one resend (or, with a policy, one attempt); a request out of
        headroom is reported as status 0 — it never got an answer.
        """
        while window:
            lane_idx, _ = window.popleft()
            if policy is not None:
                attempts[lane_idx] += 1
                if (
                    attempts[lane_idx] < policy.max_attempts
                    and budget is not None
                    and budget.take()
                ):
                    report.retries += 1
                    pending.appendleft(lane_idx)
                    continue
                report.giveups += 1
            elif resends[lane_idx] < _TRANSPORT_RESENDS:
                resends[lane_idx] += 1
                pending.appendleft(lane_idx)
                continue
            _classify(report, 0)
            record(lane_idx, 0, b"")

    reader = writer = None

    async def reconnect() -> None:
        nonlocal reader, writer
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if policy is not None and rng is not None:
            # Back off before hammering a server that just dropped us.
            await asyncio.sleep(policy.delay_s(1, rng))
        reader, writer = await asyncio.open_connection(host, port)

    try:
        reader, writer = await asyncio.open_connection(host, port)
        while pending or window:
            while pending and len(window) < pipeline:
                lane_idx = pending.popleft()
                writer.write(requests[lane_idx])
                window.append((lane_idx, perf_counter()))
            try:
                await writer.drain()
                if timeout_s > 0:
                    response = await asyncio.wait_for(
                        _read_response(reader), timeout_s
                    )
                else:
                    response = await _read_response(reader)
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                HTTPProtocolError,
                ConnectionError,
                OSError,
            ):
                report.transport_errors += 1
                drop_inflight()
                if pending or window:
                    await reconnect()
                continue
            status, rid, retry_after, body = response
            lane_idx, sent_at = window.popleft()
            observe(perf_counter() - sent_at)
            attempts[lane_idx] += 1
            if (
                policy is not None
                and status in RETRYABLE_STATUSES
                and attempts[lane_idx] < policy.max_attempts
                and budget is not None
                and budget.take()
            ):
                report.retries += 1
                await asyncio.sleep(
                    policy.delay_s(attempts[lane_idx], rng, retry_after)
                )
                pending.appendleft(lane_idx)
                continue
            if policy is not None and status in RETRYABLE_STATUSES:
                report.giveups += 1
            _classify(report, status)
            if rid is None or (
                sent_ids is not None and rid != sent_ids[lane_idx]
            ):
                report.id_errors += 1
            if report.request_ids is not None:
                report.request_ids[slots[lane_idx][0]] = rid
            record(lane_idx, status, body)
    finally:
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def run_workload(
    host: str,
    port: int,
    pairs: Sequence[Pair],
    *,
    concurrency: int = 8,
    repeats: int = 1,
    pipeline: int = 1,
    collect_results: bool = False,
    send_request_ids: bool = False,
    retry: Optional[RetryPolicy] = None,
    trace_every: int = 0,
) -> LoadReport:
    """Replay ``pairs`` (``repeats`` times) against a running server.

    ``pipeline`` is the HTTP/1.1 pipelining depth per connection: each
    worker keeps up to that many requests on the wire before reading
    the next in-order response.  Depth 1 is strict request/response;
    deeper windows are the standard load-generator way to saturate a
    server without spawning hundreds of connections.

    With ``send_request_ids=True`` each request carries a
    deterministic ``X-Request-Id`` (``load-<slot hex>``) that the
    server must echo; see :attr:`LoadReport.id_errors`.

    ``retry`` enables status-based retries (see :class:`RetryPolicy`);
    without it, only connection losses are resent (bounded per slot)
    and every other status is reported as-is.

    ``trace_every`` stamps 1 in N requests (by global slot) with a
    fresh sampled ``traceparent`` header, forcing the server to trace
    them regardless of its own head-sampling rate; 0 sends none.
    """
    requests: List[Pair] = list(pairs) * max(1, repeats)
    concurrency = max(1, min(concurrency, len(requests) or 1))
    report = LoadReport(
        num_requests=len(requests),
        concurrency=concurrency,
        wall_seconds=0.0,
        results=[None] * len(requests) if collect_results else None,
        request_ids=(
            [None] * len(requests) if collect_results else None
        ),
    )
    lanes = split_strided(list(enumerate(requests)), concurrency)
    pipeline = max(1, pipeline)
    budget = _RetryBudget(retry.budget) if retry is not None else None
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _worker(
                host, port, lane, report, pipeline,
                send_request_ids, retry, budget, trace_every,
            )
            for lane in lanes
            if lane
        )
    )
    report.wall_seconds = time.perf_counter() - started
    return report


def replay(
    host: str,
    port: int,
    pairs: Sequence[Pair],
    *,
    concurrency: int = 8,
    repeats: int = 1,
    pipeline: int = 1,
    collect_results: bool = False,
    send_request_ids: bool = False,
    retry: Optional[RetryPolicy] = None,
    trace_every: int = 0,
) -> LoadReport:
    """Synchronous wrapper around :func:`run_workload`."""
    return asyncio.run(
        run_workload(
            host,
            port,
            pairs,
            concurrency=concurrency,
            repeats=repeats,
            pipeline=pipeline,
            collect_results=collect_results,
            send_request_ids=send_request_ids,
            retry=retry,
            trace_every=trace_every,
        )
    )

"""LRU cache of query results keyed on normalized vertex pairs.

Graphs are undirected, so ``Q(s, t) == Q(t, s)`` exactly; caching under
``(min(s, t), max(s, t))`` doubles the effective hit surface of any
workload with symmetric traffic.  Hit/miss totals are kept locally and
mirrored into the server's recorder (``serve.cache.hits`` /
``serve.cache.misses``) so ``/metrics`` exposes them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.obs import NULL_RECORDER
from repro.types import QueryResult, Vertex

Key = Tuple[Vertex, Vertex]


class ResultCache:
    """A bounded LRU of ``pair -> QueryResult`` (capacity 0 disables)."""

    __slots__ = ("capacity", "hits", "misses", "_entries", "_recorder")

    def __init__(self, capacity: int, *, recorder=NULL_RECORDER) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Key, QueryResult]" = OrderedDict()
        self._recorder = recorder

    @staticmethod
    def key_of(source: Vertex, target: Vertex) -> Key:
        """The normalized cache key of one query pair."""
        return (source, target) if source <= target else (target, source)

    def get(self, source: Vertex, target: Vertex) -> Optional[QueryResult]:
        """The cached answer for the pair, refreshing its recency."""
        if self.capacity == 0:
            return None
        result = self._entries.get(self.key_of(source, target))
        if result is None:
            self.misses += 1
            self._recorder.incr("serve.cache.misses")
            return None
        self._entries.move_to_end(self.key_of(source, target))
        self.hits += 1
        self._recorder.incr("serve.cache.hits")
        return result

    def put(self, source: Vertex, target: Vertex, result: QueryResult) -> None:
        """Insert (or refresh) the pair, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        key = self.key_of(source, target)
        self._entries[key] = result
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (hot reload: results may differ now)."""
        self._entries.clear()

    def invalidate(self, should_drop) -> int:
        """Drop entries whose key matches ``should_drop(key)``.

        The targeted form of :meth:`clear` used by the live-update
        path: a delta batch only changes answers of pairs touching a
        vertex whose labels were patched, so everything else stays
        cached.  Returns the number of entries dropped (mirrored into
        ``serve.cache.invalidated``).
        """
        if not self._entries:
            return 0
        doomed = [key for key in self._entries if should_drop(key)]
        for key in doomed:
            del self._entries[key]
        if doomed:
            self._recorder.incr("serve.cache.invalidated", len(doomed))
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        return self.key_of(*key) in self._entries

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        """JSON-friendly cache statistics for ``/metrics``."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

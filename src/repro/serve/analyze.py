"""``repro-spc analyze`` — workload analytics over a ``/stats`` payload.

Renders the server's Space-Saving ``top_pairs`` block (see
:class:`repro.obs.sketch.SpaceSaving`) as an operator report: the
hot-pair table with per-key error bounds, a skew summary (what share
of all queries the tracked heavy hitters account for), the
cache-efficiency attribution split between heavy hitters and the tail,
and — against a fleet router — the ``fleet.per_worker`` freshness
table.  :func:`render_analysis` is a pure function of the payload, so
tests drive it with fixture dicts and the CLI just fetches and prints.
"""

from __future__ import annotations

from typing import List

__all__ = ["render_analysis"]


def _fmt_share(count: float, total: float) -> str:
    return f"{count / total * 100:6.2f}%" if total else "   n/a "


def _pair_label(pair) -> str:
    if isinstance(pair, (list, tuple)) and len(pair) == 2:
        return f"({pair[0]}, {pair[1]})"
    return repr(pair)


def _attribution_lines(attribution: dict) -> List[str]:
    lines = ["cache efficiency by workload class:"]
    for side, label in (("hot", "heavy hitters"), ("tail", "tail")):
        block = attribution.get(side) or {}
        hits = block.get("hits", 0)
        misses = block.get("misses", 0)
        seen = hits + misses
        rate = block.get(
            "hit_rate", hits / seen if seen else 0.0
        )
        lines.append(
            f"  {label:<14} lookups {seen:>8}  hits {hits:>8}"
            f"  hit-rate {rate * 100:6.2f}%"
        )
    hot = attribution.get("hot") or {}
    tail = attribution.get("tail") or {}
    hot_seen = hot.get("hits", 0) + hot.get("misses", 0)
    tail_seen = tail.get("hits", 0) + tail.get("misses", 0)
    if hot_seen and tail_seen:
        hot_rate = hot.get("hit_rate", hot.get("hits", 0) / hot_seen)
        tail_rate = tail.get(
            "hit_rate", tail.get("hits", 0) / tail_seen
        )
        if hot_rate < tail_rate:
            lines.append(
                "  note: heavy hitters hit the cache *less* than the "
                "tail — the cache may be too small for the hot set, or "
                "the workload shifted inside the window"
            )
    return lines


def _per_worker_lines(rows: List[dict]) -> List[str]:
    lines = [
        "per-worker fleet breakdown:",
        "  worker   requests       qps    p99 ms  cache-hit"
        "   epoch  epoch-lag   seqno  seqno-lag",
    ]
    for row in rows:
        line = (
            f"  {row.get('worker', '?'):>6}"
            f"  {row.get('requests', 0):>9}"
            f"  {row.get('qps', 0.0):>8.1f}"
            f"  {row.get('p99_ms', 0.0):>8.3f}"
            f"  {row.get('cache_hit_rate', 0.0) * 100:>8.2f}%"
        )
        if "epoch" in row:
            line += (
                f"  {row['epoch']:>6}  {row.get('epoch_lag', 0):>9}"
                f"  {row['seqno']:>6}  {row.get('seqno_lag', 0):>9}"
            )
        lines.append(line)
    return lines


def render_analysis(stats: dict, *, top_n: int = 20) -> str:
    """One analytics report from a ``/stats`` payload (pure function)."""
    lines: List[str] = []
    block = stats.get("top_pairs")
    fleet = stats.get("fleet") if isinstance(stats.get("fleet"), dict) else None
    title = "repro-spc analyze"
    if fleet:
        title += (
            f" — fleet of {fleet.get('workers', '?')} worker(s),"
            f" {fleet.get('reporting', '?')} reporting"
        )
    lines.append(title)
    lines.append("=" * len(title))
    if not isinstance(block, dict):
        lines.append(
            "no workload analytics in this /stats payload — the server "
            "was started with top_pairs_capacity=0 (--top-pairs 0)"
        )
        return "\n".join(lines) + "\n"
    sketch = block.get("sketch") or {}
    total = sketch.get("total", 0)
    capacity = sketch.get("capacity", 0)
    top = block.get("top") or []
    lines.append(
        f"workload: {total} query-pair observations; sketch tracks up "
        f"to {capacity} pairs (error bound <= total/capacity = "
        f"{total / capacity if capacity else 0:.1f})"
    )
    lines.append("")
    shown = top[:top_n]
    if shown:
        covered = sum(entry.get("count", 0) for entry in shown)
        lines.append(
            f"top {len(shown)} pairs ({_fmt_share(covered, total).strip()}"
            " of all observations):"
        )
        lines.append(
            "  rank  pair                 count     share  over-count <="
        )
        for rank, entry in enumerate(shown, start=1):
            lines.append(
                f"  {rank:>4}  {_pair_label(entry.get('pair')):<18}"
                f"  {entry.get('count', 0):>8}"
                f"  {_fmt_share(entry.get('count', 0), total)}"
                f"  {entry.get('error', 0):>12}"
            )
        top_share = covered / total if total else 0.0
        skew = (
            "heavy-tailed (a result cache pays for itself)"
            if top_share >= 0.2
            else "near-uniform (caching buys little; rely on batching)"
        )
        lines.append("")
        lines.append(
            f"skew: top {len(shown)} pairs cover "
            f"{top_share * 100:.1f}% of the workload — {skew}"
        )
    else:
        lines.append("no pairs observed yet")
    attribution = block.get("cache_attribution")
    if isinstance(attribution, dict):
        lines.append("")
        lines.extend(_attribution_lines(attribution))
    if fleet and isinstance(fleet.get("per_worker"), list):
        lines.append("")
        lines.extend(_per_worker_lines(fleet["per_worker"]))
    return "\n".join(lines) + "\n"

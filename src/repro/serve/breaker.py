"""Circuit breaker over the index scan path.

Scan failures (an :class:`~repro.faults.InjectedFault`, a crashed
executor, a corrupt arena read) are counted per *request outcome*;
``threshold`` consecutive failures trip the breaker **open**.  While
open:

* ``/health`` reports ``degraded`` (HTTP 503) with a
  ``circuit_open`` breach, so load balancers rotate traffic away;
* a server configured with a fallback index routes queries to it
  (correct but slow) instead of the broken scan path;
* every ``cooldown_s`` one request is let through to the real index as
  a **probe** — a success closes the breaker instantly (self-healing),
  a failure restarts the cooldown clock.

A single success on the index path resets the consecutive-failure
count, so isolated faults under chaos never trip it; only a genuinely
broken index does.  ``threshold=0`` disables the breaker entirely.
"""

from __future__ import annotations

import time
from typing import Callable, Dict


class CircuitBreaker:
    """Consecutive-failure breaker with cooldown-gated probes."""

    def __init__(
        self,
        threshold: int,
        cooldown_s: float = 5.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._consecutive = 0
        self._open = False
        self._last_probe = 0.0
        self.trips = 0
        self.failures = 0
        self.successes = 0

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    @property
    def open(self) -> bool:
        """Whether the breaker is currently tripped."""
        return self._open

    def record_success(self) -> None:
        """An index-path request succeeded; close and reset."""
        self.successes += 1
        self._consecutive = 0
        self._open = False

    def record_failure(self) -> bool:
        """An index-path request failed; returns True when this trips."""
        self.failures += 1
        self._consecutive += 1
        if (
            self.enabled
            and not self._open
            and self._consecutive >= self.threshold
        ):
            self._open = True
            self.trips += 1
            self._last_probe = self._clock()
            return True
        return False

    def prefer_fallback(self) -> bool:
        """Whether the next query should bypass the index.

        ``False`` while closed (normal serving) and once per cooldown
        while open (the probe that lets the breaker discover a healed
        index).  Callers without a fallback can ignore this and keep
        using the index; successes will close the breaker on their own.
        """
        if not self._open:
            return False
        now = self._clock()
        if now - self._last_probe >= self.cooldown_s:
            self._last_probe = now
            return False  # probe: try the real index
        return True

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly breaker state for ``/health`` and ``/stats``."""
        return {
            "enabled": self.enabled,
            "state": "open" if self._open else "closed",
            "threshold": self.threshold,
            "consecutive_failures": self._consecutive,
            "failures": self.failures,
            "successes": self.successes,
            "trips": self.trips,
        }

"""Minimal HTTP/1.1 framing over asyncio streams — stdlib only.

Just enough of the protocol for the query server and its load-generator
client: request/status lines, headers, ``Content-Length`` bodies, and
keep-alive.  No chunked encoding, no TLS, no multipart — the payloads
are tiny JSON objects and the parser stays a handful of allocations per
request, which matters because framing overhead is pure per-request
cost that micro-batching cannot amortise.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from http import HTTPStatus
from typing import Dict, Optional, Sequence, Tuple
from urllib.parse import unquote_plus

from repro.exceptions import ReproError

#: Upper bound on one request's header section, defensive only.
MAX_HEADER_BYTES = 16 * 1024

#: Upper bound on a request/response body (a big batch of pairs).
MAX_BODY_BYTES = 8 * 1024 * 1024


class HTTPProtocolError(ReproError):
    """The peer sent bytes that do not frame as HTTP/1.1."""


_REASONS = {status.value: status.phrase for status in HTTPStatus}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should survive this exchange."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> object:
        """The body decoded as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HTTPProtocolError(f"request body is not JSON: {exc}") from exc


def _parse_params(raw_query: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for part in raw_query.split("&"):
        if not part:
            continue
        key, _, value = part.partition("=")
        params[unquote_plus(key)] = unquote_plus(value)
    return params


async def read_head(reader: asyncio.StreamReader) -> Optional[bytes]:
    """The raw head (request/status line + headers) of one message.

    One ``readuntil`` instead of a ``readline`` per header keeps the
    await count — and the per-request event-loop cost — constant.
    Returns ``None`` on a clean EOF before any byte.
    """
    try:
        return await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HTTPProtocolError("connection closed mid-head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HTTPProtocolError("header section too large") from exc


def _parse_headers(lines: Sequence[bytes]) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, sep, value = line.partition(b":")
        if not sep:
            raise HTTPProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower().decode("latin-1")] = (
            value.strip().decode("latin-1")
        )
    return headers


async def _read_body(
    reader: asyncio.StreamReader, headers: Dict[str, str]
) -> bytes:
    raw_length = headers.get("content-length")
    if raw_length is None:
        return b""
    try:
        length = int(raw_length)
    except ValueError:
        raise HTTPProtocolError(
            f"bad Content-Length {raw_length!r}"
        ) from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HTTPProtocolError(f"Content-Length {length} out of range")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise HTTPProtocolError("connection closed mid-body") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one request; ``None`` on a clean EOF between requests."""
    head = await read_head(reader)
    if head is None:
        return None
    return await parse_request(head, reader)


async def parse_request(
    head: bytes, reader: asyncio.StreamReader
) -> Request:
    """Parse an already-read head (and its body) into a Request."""
    if len(head) > MAX_HEADER_BYTES:
        raise HTTPProtocolError("header section too large")
    lines = head.split(b"\r\n")
    fields = lines[0].decode("latin-1").split()
    if len(fields) != 3 or not fields[2].startswith("HTTP/"):
        raise HTTPProtocolError(f"malformed request line {lines[0]!r}")
    method, target, version = fields
    path, _, raw_query = target.partition("?")
    headers = _parse_headers(lines[1:])
    body = await _read_body(reader, headers)
    return Request(
        method=method.upper(),
        path=path,
        params=_parse_params(raw_query),
        headers=headers,
        body=body,
        version=version,
    )


def response_bytes(
    status: int,
    payload: object,
    *,
    keep_alive: bool = True,
    extra_headers: Sequence[Tuple[str, str]] = (),
) -> bytes:
    """Serialize one JSON response, ready to write to the transport.

    ``payload`` may already be JSON-encoded ``bytes`` (the hot answer
    path pre-serializes) — anything else goes through ``json.dumps``.
    A ``Content-Type`` entry in ``extra_headers`` replaces the JSON
    default (the Prometheus ``/metrics`` representation is text).
    """
    body = (
        payload
        if type(payload) is bytes
        else json.dumps(payload, separators=(",", ":")).encode()
    )
    content_type = "application/json"
    plain_headers = extra_headers
    if extra_headers and any(
        name.lower() == "content-type" for name, _ in extra_headers
    ):
        plain_headers = []
        for name, value in extra_headers:
            if name.lower() == "content-type":
                content_type = value
            else:
                plain_headers.append((name, value))
    head = (
        f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
    )
    if plain_headers:
        head += "".join(
            f"{name}: {value}\r\n" for name, value in plain_headers
        )
    return (head + "\r\n").encode("latin-1") + body


async def read_raw_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    """Client side: one response as ``(status, headers, raw body)``."""
    head = await read_head(reader)
    if head is None:
        raise HTTPProtocolError("connection closed before status line")
    lines = head.split(b"\r\n")
    fields = lines[0].split(None, 2)
    if len(fields) < 2 or not fields[0].startswith(b"HTTP/"):
        raise HTTPProtocolError(f"malformed status line {lines[0]!r}")
    try:
        status = int(fields[1])
    except ValueError:
        raise HTTPProtocolError(
            f"malformed status {fields[1]!r}"
        ) from None
    headers = _parse_headers(lines[1:])
    body = await _read_body(reader, headers)
    return status, headers, body


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], object]:
    """Client side: read one response as ``(status, headers, json)``."""
    status, headers, body = await read_raw_response(reader)
    payload = json.loads(body) if body else None
    return status, headers, payload

"""Tunable knobs of the serving layer, validated in one place."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ReproError


class ServeConfigError(ReproError):
    """A serving configuration value is out of range."""


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of one :class:`~repro.serve.server.SPCServer`.

    The coalescing window is bounded on both axes: a batch is flushed as
    soon as ``max_batch`` requests are pending *or* ``max_wait_us``
    microseconds have passed since the first one arrived, so an idle
    server adds at most ``max_wait_us`` of latency and a loaded server
    fills whole batches without waiting at all.
    """

    #: Interface to bind; loopback by default.
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it back off the server).
    port: int = 8355
    #: Resolve concurrent requests through one ``query_batch`` call.
    #: ``False`` answers per request — the uncoalesced baseline the
    #: serving benchmark compares against.
    coalesce: bool = True
    #: Flush a pending batch at this size.
    max_batch: int = 64
    #: Flush a pending batch after this many microseconds.
    max_wait_us: int = 1000
    #: LRU result-cache capacity in entries; 0 disables caching.
    cache_size: int = 4096
    #: Shed (HTTP 503) once this many requests are queued unanswered.
    queue_high_water: int = 256
    #: Per-request deadline covering queueing, batching, and the scan.
    request_timeout_ms: int = 1000
    #: Seconds to wait for in-flight connections during graceful drain.
    drain_grace_s: float = 5.0
    #: Structured JSON-lines request log destination: a path, ``"-"``
    #: for stderr, or ``None`` (default) to disable logging entirely.
    access_log: Optional[str] = None
    #: Latency above which a request also emits a ``slow_query`` record.
    slow_query_ms: float = 100.0
    #: Keep 1 in N access records for fast 200s (1 = log everything,
    #: 0 = log only slow/non-200 requests); slow and failed requests
    #: are always logged.
    log_sample_every: int = 1
    #: Seed of the deterministic access-log sampler.
    log_seed: int = 0
    #: Rolling SLO window length in seconds; 0 disables window
    #: tracking (``/stats`` then reports no window and readiness never
    #: degrades).
    slo_window_s: int = 30
    #: Readiness objective: degrade when windowed p99 latency exceeds
    #: this many milliseconds (0 disables the objective).
    slo_p99_ms: float = 0.0
    #: Readiness objective: degrade when the windowed error rate
    #: exceeds this fraction (0 disables the objective).
    slo_error_rate: float = 0.0
    #: Trip the scan circuit breaker after this many *consecutive*
    #: request failures on the index path (0 disables the breaker).
    #: While open, ``/health`` degrades and queries route to the
    #: fallback index when one is configured.
    breaker_threshold: int = 10
    #: Seconds between index probes while the breaker is open; a
    #: successful probe closes it.
    breaker_cooldown_s: float = 5.0
    #: CPython thread switch interval (``sys.setswitchinterval``)
    #: applied while the server runs; 0 leaves the process default.
    #: The event loop and the scan worker hand the GIL back and forth
    #: once per batch, and the interpreter default (5 ms) lets a
    #: finished scan sit unresolved while the loop runs Python — a
    #: short interval cuts that handoff latency.  Process-global: the
    #: previous value is restored on drain.
    switch_interval_s: float = 1e-4
    #: Accept streamed edge-weight deltas on ``POST /admin/update``.
    #: Requires the server to be constructed with an
    #: :class:`~repro.live.coordinator.UpdateCoordinator` (the CLI
    #: wires one from ``--live-updates --graph``).
    live_updates: bool = False
    #: Patched overlay entries that trigger a background
    #: rebuild-and-swap of the base index; 0 lets the overlay grow
    #: forever (rebuilds only on demand).
    overlay_threshold: int = 20000
    #: Seconds an in-flight repair may lag before queries that could
    #: see stale labels fall back to counting Dijkstra on the current
    #: weights; 0 disables the freshness deadline.
    update_freshness_s: float = 0.0
    #: Per-process ring-buffer capacity (spans) of the distributed
    #: trace collector; 0 disables tracing entirely — no traceparent
    #: parsing, no spans, no ``/admin/trace``.
    trace_buffer: int = 4096
    #: Locally sample 1 in N requests into a new trace when the client
    #: sent no ``traceparent`` (1 traces everything, 0 traces nothing
    #: locally); an inbound sampled traceparent is always honoured
    #: regardless, so a router's sampling decision propagates.
    trace_sample_every: int = 64
    #: Space-Saving heavy-hitter sketch capacity over symmetric
    #: ``(s, t)`` query pairs, surfaced as the ``top_pairs`` block in
    #: ``/stats``; 0 disables workload analytics.
    top_pairs_capacity: int = 256
    #: Directory of the durable live-update write-ahead log; ``None``
    #: (default) keeps accepted batches in memory only.  A fleet gives
    #: each worker its own ``worker-<id>/`` subdirectory.
    wal_dir: Optional[str] = None
    #: Fleet only: respawn dead workers (capped-exponential backoff,
    #: flap circuit) instead of leaving them ejected from the ring.
    respawn: bool = False
    #: Fleet only: seconds between supervisor liveness probes of each
    #: worker (process check + HTTP ``/health``); 0 disables the
    #: proactive probe loop — death is then only detected reactively,
    #: when a proxied request fails.
    probe_interval_s: float = 1.0
    #: Flap circuit: a worker that dies ``flap_max_restarts`` times
    #: within ``flap_window_s`` seconds stays down and degrades
    #: ``/health`` until the router restarts.
    flap_window_s: float = 30.0
    flap_max_restarts: int = 5
    #: First respawn delay; doubles per recent death up to the cap.
    respawn_backoff_s: float = 0.1
    respawn_backoff_max_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServeConfigError("max_batch must be >= 1")
        if self.max_wait_us < 0:
            raise ServeConfigError("max_wait_us must be >= 0")
        if self.cache_size < 0:
            raise ServeConfigError("cache_size must be >= 0")
        if self.queue_high_water < 1:
            raise ServeConfigError("queue_high_water must be >= 1")
        if self.request_timeout_ms <= 0:
            raise ServeConfigError("request_timeout_ms must be > 0")
        if self.drain_grace_s < 0:
            raise ServeConfigError("drain_grace_s must be >= 0")
        if not 0 <= self.port <= 65535:
            raise ServeConfigError(f"port {self.port} is out of range")
        if self.slow_query_ms < 0:
            raise ServeConfigError("slow_query_ms must be >= 0")
        if self.log_sample_every < 0:
            raise ServeConfigError("log_sample_every must be >= 0")
        if self.slo_window_s < 0:
            raise ServeConfigError("slo_window_s must be >= 0")
        if self.slo_p99_ms < 0:
            raise ServeConfigError("slo_p99_ms must be >= 0")
        if not 0 <= self.slo_error_rate <= 1:
            raise ServeConfigError("slo_error_rate must be in [0, 1]")
        if self.switch_interval_s < 0:
            raise ServeConfigError("switch_interval_s must be >= 0")
        if self.breaker_threshold < 0:
            raise ServeConfigError("breaker_threshold must be >= 0")
        if self.breaker_cooldown_s < 0:
            raise ServeConfigError("breaker_cooldown_s must be >= 0")
        if self.overlay_threshold < 0:
            raise ServeConfigError("overlay_threshold must be >= 0")
        if self.update_freshness_s < 0:
            raise ServeConfigError("update_freshness_s must be >= 0")
        if self.trace_buffer < 0:
            raise ServeConfigError("trace_buffer must be >= 0")
        if self.trace_sample_every < 0:
            raise ServeConfigError("trace_sample_every must be >= 0")
        if self.top_pairs_capacity < 0:
            raise ServeConfigError("top_pairs_capacity must be >= 0")
        if self.probe_interval_s < 0:
            raise ServeConfigError("probe_interval_s must be >= 0")
        if self.flap_window_s < 0:
            raise ServeConfigError("flap_window_s must be >= 0")
        if self.flap_max_restarts < 1:
            raise ServeConfigError("flap_max_restarts must be >= 1")
        if self.respawn_backoff_s <= 0:
            raise ServeConfigError("respawn_backoff_s must be > 0")
        if self.respawn_backoff_max_s < self.respawn_backoff_s:
            raise ServeConfigError(
                "respawn_backoff_max_s must be >= respawn_backoff_s"
            )

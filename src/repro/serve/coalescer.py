"""The micro-batching coalescer: awaitable submissions, batched scans.

:class:`MicroBatcher` is the core of the serving layer.  Concurrent
request handlers call :meth:`MicroBatcher.submit` and await the future
it returns; the batcher gathers submissions into windows and resolves
each window with one :meth:`SPCIndex.query_batch` call on a worker
thread, so throughput under load rides the vectorised batch kernel
instead of the per-pair path.

A window closes on the *earliest* of three signals:

* **full** — ``max_batch`` submissions are pending;
* **idle** — the event loop finished its current tick (scheduled with
  ``call_soon``), i.e. every request that was already readable has been
  parsed and submitted.  This is what makes batching *adaptive*: a lone
  request flushes immediately, while a burst of concurrent requests —
  woken by the same selector poll — lands in one window with no added
  latency;
* **timer** — ``max_wait_us`` elapsed since the window opened (a
  backstop; with idle-flushing it only fires under pathological loads).

While a scan is in flight the idle flush is suppressed, so the next
window keeps filling for the scan's whole duration — batch size then
tracks the arrival rate automatically (this is the serving analogue of
the pipelining in the paper-adjacent batch-processing literature).

The index must be read-only while served (every built index is); the
worker thread never mutates it, and ``tests/core/
test_concurrent_readers.py`` pins the lock-free read guarantee.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional, Set, Tuple

from repro.exceptions import ReproError
from repro.obs import NULL_RECORDER, new_span_id
from repro.types import Vertex

#: One queued submission: source, target, the future to resolve, and an
#: optional caller-owned metadata dict (``None`` on the fastest path).
_Pending = Tuple[Vertex, Vertex, "asyncio.Future", Optional[dict]]


class MicroBatcher:
    """Coalesces concurrent ``Q(s, t)`` submissions into batch scans.

    Must be used from a single event loop.  ``executor`` (typically a
    one-worker ``ThreadPoolExecutor``) keeps the loop free while a
    batch is scanned; pass ``None`` to scan inline on the loop (used by
    unit tests for determinism).
    """

    def __init__(
        self,
        index,
        *,
        max_batch: int = 64,
        max_wait_us: int = 1000,
        recorder=NULL_RECORDER,
        executor=None,
        fault_plan=None,
        tracer=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._index = index
        self._fault_plan = fault_plan
        self.max_batch = max_batch
        self.max_wait_s = max(0, max_wait_us) / 1e6
        self._recorder = recorder
        #: Optional :class:`~repro.obs.tracing.SpanCollector`; when a
        #: submission's ``meta`` carries a ``"trace"`` tuple
        #: ``(trace_id, parent span id)``, the batch scan is recorded
        #: as a ``serve.scan_batch`` span under that request's span.
        self._tracer = tracer
        self._executor = executor
        self._pending: List[_Pending] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._idle: Optional[asyncio.Handle] = None
        self._scans_inflight = 0
        self._flushes: Set["asyncio.Task"] = set()
        self.batches_flushed = 0
        self.queries_batched = 0

    @property
    def pending_count(self) -> int:
        """Submissions waiting for the current window to flush."""
        return len(self._pending)

    def swap_index(self, index) -> None:
        """Atomically serve subsequent batches from ``index``.

        Hot reload: in-flight scans keep the old object alive until
        their batch resolves, so no submission is ever dropped.
        """
        self._index = index

    def submit(
        self,
        source: Vertex,
        target: Vertex,
        meta: Optional[dict] = None,
    ) -> "asyncio.Future":
        """Enqueue one query; the returned future yields a QueryResult.

        The future fails with the underlying :class:`ReproError` when
        the pair cannot be answered (e.g. an unindexed vertex) — other
        submissions in the same window are unaffected.

        When ``meta`` is a dict, the batcher fills it as the
        submission moves through: ``queue_wait_s`` (submit → scan
        start), ``batch_size``, ``flush_reason``, and ``scan_s`` — the
        per-request correlation data behind access logs and ``/query``
        explain responses.  ``None`` (the default) skips all metadata
        bookkeeping.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        if meta is not None:
            meta["submitted_at"] = time.perf_counter()
        self._pending.append((source, target, future, meta))
        if len(self._pending) >= self.max_batch:
            self._flush("full")
            return future
        if self._timer is None:
            self._timer = loop.call_later(
                self.max_wait_s, self._flush, "timer"
            )
        if self._scans_inflight == 0 and self._idle is None:
            self._idle = loop.call_soon(self._flush, "idle")
        return future

    def _cancel_triggers(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._idle is not None:
            self._idle.cancel()
            self._idle = None

    def _flush(self, reason: str) -> None:
        """Move the pending window into an owned resolution task."""
        self._cancel_triggers()
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        task = asyncio.get_running_loop().create_task(
            self._resolve(batch, reason)
        )
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    async def _resolve(self, batch: List[_Pending], reason: str) -> None:
        pairs = [(source, target) for source, target, _, _ in batch]
        rec = self._recorder
        rec.incr("serve.batch.count")
        rec.incr(f"serve.batch.flush_{reason}")
        rec.observe("serve.batch.size", len(pairs))
        self.batches_flushed += 1
        self.queries_batched += len(pairs)
        self._scans_inflight += 1
        started = time.perf_counter()
        for _, _, _, meta in batch:
            if meta is not None:
                meta["queue_wait_s"] = started - meta.pop("submitted_at")
                meta["batch_size"] = len(pairs)
                meta["flush_reason"] = reason
        try:
            if self._fault_plan is not None:
                self._fault_plan.check("flush.fail")
            if self._executor is None:
                results = self._index.query_batch(pairs)
            else:
                results = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self._index.query_batch, pairs
                )
        except ReproError:
            # One bad pair fails the whole batch call; fall back to
            # per-pair queries so only the offending futures error.
            results = []
            for source, target in pairs:
                try:
                    results.append(self._index.query(source, target))
                except ReproError as exc:
                    results.append(exc)
        except Exception:
            # Infrastructure crash (dead executor, injected fault,
            # corrupt read): isolate-and-retry each pair singly once,
            # so one bad scan never fails the batch's other requests.
            rec.incr("serve.batch.isolated")
            results = await self._retry_singly(pairs)
        self._scans_inflight -= 1
        scan_s = time.perf_counter() - started
        rec.observe("serve.batch.seconds", scan_s)
        tracer = self._tracer
        for (_, _, future, meta), result in zip(batch, results):
            if meta is not None:
                meta["scan_s"] = scan_s
                if tracer is not None:
                    trace = meta.get("trace")
                    if trace is not None:
                        # One scan span per traced request in the
                        # window, parented to that request's span —
                        # shared start/duration, so the viewer shows
                        # exactly which requests rode one scan.
                        tracer.record(
                            "serve.scan_batch",
                            trace_id=trace[0],
                            span_id=new_span_id(),
                            parent_id=trace[1],
                            start=started,
                            duration=scan_s,
                            attrs={
                                "batch_size": len(pairs),
                                "flush_reason": reason,
                            },
                        )
            if future.done():
                continue  # waiter gave up (deadline) — drop the answer
            if isinstance(result, BaseException):
                future.set_exception(result)
            else:
                future.set_result(result)
        # Everything that arrived during the scan forms the next window.
        if self._pending and self._scans_inflight == 0:
            self._flush("afterscan")

    async def _retry_singly(self, pairs) -> List[object]:
        """The isolation retry: one ``query`` per pair, errors kept
        in-place so only the still-failing submissions error out."""
        loop = asyncio.get_running_loop()
        rec = self._recorder
        results: List[object] = []
        for source, target in pairs:
            try:
                if self._executor is None:
                    results.append(self._index.query(source, target))
                else:
                    results.append(
                        await loop.run_in_executor(
                            self._executor, self._index.query,
                            source, target,
                        )
                    )
                rec.incr("serve.batch.retry_ok")
            except Exception as exc:
                rec.incr("serve.batch.retry_failed")
                results.append(exc)
        return results

    async def drain(self) -> None:
        """Flush the open window and wait for every in-flight batch."""
        self._flush("drain")
        while self._flushes or self._pending:
            if self._pending:
                self._flush("drain")
            await asyncio.gather(
                *list(self._flushes), return_exceptions=True
            )

"""Multi-process serving fleet: an asyncio router over N worker servers.

``repro-spc serve --workers N`` starts one :class:`FleetRouter` in the
foreground process and ``N`` :class:`~repro.serve.server.SPCServer`
workers, each its own OS process with its own event loop, GIL, and
scan executor.  The index is **not** copied to the workers: every
worker opens the same v4 container with ``load_index(path)`` and the
OS page cache shares one physical copy of the mapped arena across the
whole fleet — cold start per worker is page-fault-time, and resident
memory grows with *one* index, not ``N``.

Routing is a consistent-hash ring over the symmetric query key
``(min(s, t), max(s, t))`` (:class:`HashRing`).  The same pair always
lands on the same worker, so per-worker LRU result caches stay hot and
never duplicate entries across the fleet; the symmetric key means
``(s, t)`` and ``(t, s)`` — identical answers on an undirected graph —
share one cache slot too.

The router terminates client HTTP itself and speaks plain keep-alive
HTTP/1.1 to workers over pooled loopback connections.  Queries are
pure reads, so a request that dies with its upstream connection (a
worker restart, an injected ``conn.reset`` fault) is transparently
resent a bounded number of times before the client sees a retryable
502.

Fleet-wide endpoints:

* ``GET /query`` / ``POST /query`` — routed by pair; JSON batches are
  scattered by owner and gathered back in request order.
* ``GET /metrics`` — per-worker snapshots merged (counters and gauges
  summed, histograms merged bucket-wise); Prometheus text on request.
* ``GET /health`` — fleet status: ``ok`` only if every worker is ok.
* ``POST /admin/reload`` — **two-phase** fleet reload: every worker
  stages and fully verifies the new index (``prepare``), and only if
  all N succeed does the router ``commit`` the swap everywhere.  One
  corrupt file → ``abort`` everywhere, 409, old index keeps serving on
  all workers.
* ``POST /admin/update`` — **two-phase** fleet-wide delta batch: every
  worker validates and stages the batch (``prepare``); only if all N
  accept does the router ``commit`` it everywhere, so the workers'
  deterministic shadow graphs never diverge.  When a commit reports
  the overlay past its rebuild threshold, the router runs one
  coordinated rebuild: worker 0 builds and saves a fresh index, then
  the normal two-phase reload path swaps it in on every worker while
  each worker replays its post-snapshot batches onto the new base.
* ``POST /admin/profile`` — proxied to worker 0.
* ``POST /admin/trace`` — fleet trace capture: every worker's span
  ring (plus the router's own) drained, clock-aligned, and merged
  into one Chrome trace whose parent/child links cross the process
  boundary (router ``fleet.request`` → worker ``serve.request`` →
  ``serve.scan_batch``).
* ``GET /stats`` — per-worker stats fanned out and merged: a
  ``fleet.per_worker`` table (QPS, p99, cache hit rate, epoch/seqno
  lag vs the fleet maximum) and the workers' Space-Saving sketches
  merged into fleet-wide ``top_pairs``.

``SIGTERM``/``SIGINT`` drain in cascade: the router stops accepting,
finishes in-flight client requests, then signals each worker to run
its own graceful drain — zero dropped requests end to end.

**Self-healing.**  The router supervises its workers: a worker whose
process dies (detected reactively by a failed proxied request, or
proactively by the periodic liveness probe) is ejected from the ring
immediately — its in-flight and queued queries re-dispatch to the
survivors, so availability degrades but correctness never does — and,
with ``respawn`` enabled, respawned under capped-exponential backoff.
The replacement cold-starts from the same zero-copy v4 mmap, replays
its private write-ahead log (``wal_dir/worker-<id>/``) back to its
pre-crash overlay, is topped up by the router to the fleet's current
``(epoch, seqno)`` (missed batches from the router's retained update
bodies, missed rebuilds by adopting the last coordinated base), and
rejoins the ring only after a readiness probe answers.  A worker that
dies ``flap_max_restarts`` times within ``flap_window_s`` trips its
flap circuit and stays down (``/health`` reports ``flapped`` and stays
degraded).  With *every* worker down, queries answer 503 with a
``Retry-After`` header instead of hanging.
"""

from __future__ import annotations

import asyncio
import bisect
import json
import multiprocessing
import os
import signal
import time
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    Recorder,
    Sampler,
    SpaceSaving,
    SpanCollector,
    TraceContext,
    merge_trace_fragments,
    new_span_id,
    render_prometheus,
)
from repro.serve.config import ServeConfig
from repro.serve.http import (
    HTTPProtocolError,
    Request,
    parse_request,
    read_head,
    read_raw_response,
    response_bytes,
)

#: Upstream response headers forwarded verbatim to the client.
_FORWARD_HEADERS = (
    ("content-type", "Content-Type"),
    ("x-request-id", "X-Request-Id"),
    ("retry-after", "Retry-After"),
    ("allow", "Allow"),
)

#: Transparent resends of an idempotent request after a transport
#: failure (queries are pure reads; admin calls are never resent).
_UPSTREAM_RESENDS = 2

#: Idle upstream connections kept pooled per worker.
_POOL_SIZE = 32

#: Committed update bodies retained for respawn catch-up; matches the
#: coordinator's own in-memory batch log bound.
_UPDATE_LOG_MAX = 4096

#: Consecutive failed HTTP probes before a live-but-wedged worker
#: process is killed and treated as dead.
_PROBE_STRIKES = 3

#: Values accepted as "true" in admin query parameters.
_TRUTHY = {"1", "true", "yes", "on"}


class FleetError(ReproError):
    """The fleet could not be started or a worker misbehaved."""


# ----------------------------------------------------------------------
# consistent hashing
# ----------------------------------------------------------------------
class HashRing:
    """Consistent-hash ring over worker ids.

    Each worker contributes ``vnodes`` points hashed onto a 32-bit
    circle; a key is owned by the first point at or after its own hash.
    Removing one worker reassigns only ~1/N of the keyspace — per-worker
    caches survive fleet resizes mostly intact, which is the whole
    reason this is not ``hash(key) % N``.
    """

    def __init__(self, workers: Sequence[int], vnodes: int = 64) -> None:
        if not workers:
            raise FleetError("a hash ring needs at least one worker")
        points = sorted(
            (zlib.crc32(f"{worker}#{replica}".encode()), worker)
            for worker in workers
            for replica in range(vnodes)
        )
        self._hashes = [point for point, _ in points]
        self._owners = [worker for _, worker in points]

    def owner(self, key: str) -> int:
        """Worker id owning ``key``."""
        position = bisect.bisect_right(self._hashes, zlib.crc32(key.encode()))
        return self._owners[position % len(self._owners)]

    def owner_of_pair(self, source: int, target: int) -> int:
        """Worker id owning the symmetric pair key ``(s, t)``."""
        low, high = (
            (source, target) if source <= target else (target, source)
        )
        return self.owner(f"{low}:{high}")


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs, picklable for spawn."""

    worker_id: int
    index_path: str
    config: ServeConfig
    fault_spec: Optional[str] = None
    fault_seed: int = 0
    #: Graph file backing live updates; each worker loads its own copy
    #: and keeps it in lockstep via the router's all-or-nothing update
    #: fan-out.  ``None`` disables the live tier.
    live_graph_path: Optional[str] = None
    #: This worker's private write-ahead-log directory; applied batches
    #: are fsync'd there before acknowledgement and replayed on respawn.
    wal_dir: Optional[str] = None


async def _worker_serve(spec: WorkerSpec, conn) -> None:
    from repro.core.serialize import load_index
    from repro.faults import FaultPlan
    from repro.serve.server import SPCServer

    try:
        # Full verification at startup: a worker must never begin
        # serving an index it has not checksummed end to end.
        index = load_index(spec.index_path, verify=True)
        plan = (
            FaultPlan.parse(spec.fault_spec, seed=spec.fault_seed)
            if spec.fault_spec
            else None
        )
        updates = None
        if spec.live_graph_path is not None:
            from repro.graph.io import read_graph_auto
            from repro.live import UpdateCoordinator, recover_coordinator

            graph = read_graph_auto(spec.live_graph_path)
            if spec.wal_dir is not None:
                # Cold start from the mmap'd index, then replay this
                # worker's WAL to the exact pre-crash overlay state
                # before the readiness report goes out.
                updates, _recovery = recover_coordinator(
                    spec.wal_dir,
                    graph,
                    index,
                    overlay_threshold=spec.config.overlay_threshold,
                    freshness_s=spec.config.update_freshness_s,
                    fault_plan=plan,
                )
            else:
                updates = UpdateCoordinator(
                    graph,
                    index,
                    overlay_threshold=spec.config.overlay_threshold,
                    freshness_s=spec.config.update_freshness_s,
                )
        server = SPCServer(
            index,
            spec.config,
            fault_plan=plan,
            index_path=spec.index_path,
            updates=updates,
            # The router owns rebuilds: one worker building per update
            # burst is enough, and the swap must be fleet-coordinated.
            auto_rebuild=False,
        )
        if server.tracer is not None:
            # Fragments carry the role so a merged fleet trace names
            # each process lane ("router", "worker-0", "worker-1", ...).
            server.tracer.role = f"worker-{spec.worker_id}"
        await server.start()
    except Exception as exc:
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    server.install_signal_handlers()
    conn.send(("ready", server.port))
    conn.close()
    await server.wait_stopped()


def _worker_main(spec: WorkerSpec, conn) -> None:
    """Entry point of one worker process (module-level for spawn)."""
    try:
        asyncio.run(_worker_serve(spec, conn))
    except KeyboardInterrupt:  # pragma: no cover - racing SIGINT
        pass


@dataclass
class _Worker:
    """Router-side handle on one worker process (across respawns)."""

    worker_id: int
    process: multiprocessing.process.BaseProcess
    conn: object
    port: int = 0
    #: Idle pooled connections ``(reader, writer)`` to this worker.
    pool: List[tuple] = field(default_factory=list)
    #: Spec the current process was spawned from; respawns derive a
    #: fresh one (new fault seed) so a deterministic crash draw does
    #: not re-kill every replacement on its first request.
    spec: Optional[WorkerSpec] = None
    #: In the ring and receiving traffic.  A dead worker is ejected
    #: the moment its death is detected and re-admitted only after a
    #: respawn passes its readiness probe and catch-up.
    up: bool = True
    #: Process incarnation: 0 for the original spawn, +1 per respawn.
    generation: int = 0
    #: Recent death times (monotonic) inside the flap window.
    deaths: List[float] = field(default_factory=list)
    #: Lifetime death count (the flap window trims ``deaths``).
    total_deaths: int = 0
    #: Consecutive failed supervisor probes on a live process.
    probe_failures: int = 0
    #: A respawn task currently owns this handle.
    respawning: bool = False
    #: Flap circuit: died too often, stays down until router restart.
    circuit_open: bool = False
    #: Human-readable cause of the most recent death.
    last_error: Optional[str] = None


# ----------------------------------------------------------------------
# router
# ----------------------------------------------------------------------
class FleetRouter:
    """The front process of a ``serve --workers N`` fleet."""

    def __init__(
        self,
        index_path: str,
        num_workers: int,
        config: Optional[ServeConfig] = None,
        *,
        fault_spec: Optional[str] = None,
        fault_seed: int = 0,
        recorder: Optional[Recorder] = None,
        vnodes: int = 64,
        live_graph_path: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise FleetError("a fleet needs at least one worker")
        self.index_path = str(index_path)
        self.num_workers = num_workers
        self.config = config or ServeConfig()
        self.fault_spec = fault_spec
        self.fault_seed = fault_seed
        self.live_graph_path = (
            str(live_graph_path) if live_graph_path is not None else None
        )
        self._rebuild_task: Optional[asyncio.Task] = None
        #: Supervisor probe loop (None when probe_interval_s == 0).
        self._supervisor_task: Optional[asyncio.Task] = None
        #: In-flight respawn tasks, cancelled on shutdown.
        self._respawn_tasks: set = set()
        #: Recently committed update bodies ``(seqno, body)`` — the
        #: catch-up source for a respawned worker whose WAL predates
        #: batches the fleet accepted while it was down.
        self._update_log: List[Tuple[int, bytes]] = []
        #: Path and snapshot seqno of the last coordinated rebuild;
        #: a respawned worker behind on epoch adopts this base.
        self._last_rebuild: Optional[Tuple[str, int]] = None
        self.recorder = recorder if recorder is not None else Recorder()
        #: Router-side span ring; merged with worker fragments by
        #: ``POST /admin/trace`` into one fleet-wide Chrome trace.
        self.tracer: Optional[SpanCollector] = (
            SpanCollector(self.config.trace_buffer, role="router")
            if self.config.trace_buffer > 0
            else None
        )
        self._trace_sampler: Optional[Sampler] = (
            Sampler(self.config.trace_sample_every, self.config.log_seed)
            if self.tracer is not None and self.config.trace_sample_every > 0
            else None
        )
        self.vnodes = vnodes
        self.workers: List[_Worker] = []
        self.ring: Optional[HashRing] = None
        self.host = self.config.host
        self.port = self.config.port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._inflight = 0
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "FleetRouter":
        """Spawn the workers, wait for readiness, bind the front port."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        for worker_id in range(self.num_workers):
            spec = self._worker_spec(worker_id, generation=0)
            process, parent_conn = self._spawn_process(spec)
            self.workers.append(
                _Worker(worker_id, process, parent_conn, spec=spec)
            )
        for worker in self.workers:
            try:
                message = await loop.run_in_executor(
                    None, self._await_ready, worker
                )
            except Exception:
                await self._terminate_workers()
                raise
            kind, value = message
            if kind != "ready":
                await self._terminate_workers()
                raise FleetError(
                    f"worker {worker.worker_id} failed to start: {value}"
                )
            worker.port = value
        self.ring = HashRing(
            [worker.worker_id for worker in self.workers], self.vnodes
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.host, self.port = sockets[0].getsockname()[:2]
        self._started_at = time.perf_counter()
        if self.config.probe_interval_s > 0:
            self._supervisor_task = loop.create_task(self._supervise())
        return self

    def _worker_spec(self, worker_id: int, generation: int) -> WorkerSpec:
        wal_dir = None
        if self.config.wal_dir is not None:
            # Each worker owns a private WAL subdirectory: the logs are
            # per-process replay journals, not a shared commit stream.
            wal_dir = os.path.join(
                self.config.wal_dir, f"worker-{worker_id}"
            )
        return WorkerSpec(
            worker_id=worker_id,
            index_path=self.index_path,
            config=replace(self.config, host="127.0.0.1", port=0),
            fault_spec=self.fault_spec,
            # Distinct seeds: workers fault independently, not in
            # lockstep — one bad draw must not take out the fleet —
            # and every respawned generation rolls new dice.
            fault_seed=self.fault_seed + worker_id + 7919 * generation,
            live_graph_path=self.live_graph_path,
            wal_dir=wal_dir,
        )

    @staticmethod
    def _spawn_process(spec: WorkerSpec):
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_worker_main,
            args=(spec, child_conn),
            daemon=True,
            name=f"spc-worker-{spec.worker_id}",
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    @staticmethod
    def _await_ready(worker: _Worker, timeout: float = 60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if worker.conn.poll(0.1):
                try:
                    return worker.conn.recv()
                except EOFError:
                    return (
                        "error",
                        "process closed its pipe before reporting a port "
                        f"(exit code {worker.process.exitcode})",
                    )
            if not worker.process.is_alive():
                return (
                    "error",
                    f"process exited with code {worker.process.exitcode} "
                    "before reporting a port",
                )
        return ("error", f"no readiness report within {timeout}s")

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → cascade drain (router first, then workers)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: loop.create_task(self.shutdown())
            )

    async def wait_stopped(self) -> None:
        """Block until a drain has fully completed."""
        assert self._stopped is not None, "fleet was never started"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful cascade: drain clients, then drain every worker.

        The front listener closes first; in-flight client requests get
        ``drain_grace_s`` to finish (zero dropped requests), then the
        workers receive SIGTERM and run their own graceful drains.
        The daemon flag on the worker processes is the backstop, not
        the mechanism.
        """
        if self._draining:
            await self.wait_stopped()
            return
        self._draining = True
        # Supervision stops first: a drain must not race a respawn
        # re-admitting a worker the next line is about to terminate.
        housekeeping = [self._supervisor_task, *self._respawn_tasks]
        for task in housekeeping:
            if task is not None:
                task.cancel()
        if any(task is not None for task in housekeeping):
            await asyncio.gather(
                *(task for task in housekeeping if task is not None),
                return_exceptions=True,
            )
        rebuild = self._rebuild_task
        if rebuild is not None:
            # Let an in-flight coordinated swap land: it is about to
            # commit on every worker and interrupting it mid-phase is
            # the one thing the two-phase protocol cannot recover from.
            await asyncio.gather(rebuild, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_grace_s
        while self._connections and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        for worker in self.workers:
            for reader, writer in worker.pool:
                writer.close()
            worker.pool.clear()
        await self._terminate_workers()
        self._stopped.set()

    async def _terminate_workers(self) -> None:
        loop = asyncio.get_running_loop()
        for worker in self.workers:
            if worker.process.is_alive():
                # The workers never get the terminal's signal (they are
                # not in the foreground process group under CI runners),
                # so the router forwards the drain explicitly.
                worker.process.terminate()
        for worker in self.workers:
            await loop.run_in_executor(None, worker.process.join, 10.0)
            if worker.process.is_alive():  # pragma: no cover - stuck
                worker.process.kill()
                await loop.run_in_executor(None, worker.process.join, 5.0)

    # ------------------------------------------------------------------
    # supervision: death detection, ring ejection, respawn
    # ------------------------------------------------------------------
    def _live_workers(self) -> List[_Worker]:
        return [worker for worker in self.workers if worker.up]

    def _first_live(self) -> Optional[_Worker]:
        for worker in self.workers:
            if worker.up:
                return worker
        return None

    def _rebuild_ring(self) -> None:
        live = [worker.worker_id for worker in self.workers if worker.up]
        self.ring = HashRing(live, self.vnodes) if live else None

    def _on_worker_death(self, worker: _Worker, reason: str) -> None:
        """Eject a dead worker from the ring; maybe schedule a respawn.

        Idempotent: reactive detection (a failed proxy), the probe
        loop, and a failed update commit can all report the same death.
        Ejection is immediate — queries re-dispatch to survivors on the
        rebuilt ring, so availability degrades but correctness never
        does.
        """
        if not worker.up:
            return
        worker.up = False
        worker.probe_failures = 0
        worker.last_error = reason
        for _reader, writer in worker.pool:
            writer.close()
        worker.pool.clear()
        self._rebuild_ring()
        worker.total_deaths += 1
        self.recorder.incr("fleet.worker.deaths")
        self._register_death(worker)

    def _register_death(self, worker: _Worker) -> None:
        """Flap accounting plus respawn scheduling for one death."""
        now = time.monotonic()
        worker.deaths = [
            death
            for death in worker.deaths
            if now - death <= self.config.flap_window_s
        ]
        worker.deaths.append(now)
        if len(worker.deaths) >= self.config.flap_max_restarts:
            # Flapping: crashing faster than it can do useful work.
            # Stay down (and keep /health degraded) instead of burning
            # the fleet on respawn churn.
            worker.circuit_open = True
            self.recorder.incr("fleet.worker.flap_trips")
            return
        if not self.config.respawn or self._draining:
            return
        delay = min(
            self.config.respawn_backoff_max_s,
            self.config.respawn_backoff_s * (2 ** (len(worker.deaths) - 1)),
        )
        task = asyncio.get_running_loop().create_task(
            self._respawn(worker, delay)
        )
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    async def _respawn(self, worker: _Worker, delay: float) -> None:
        """Respawn one dead worker after ``delay`` seconds.

        The replacement cold-starts from the same mmap'd index, replays
        its own WAL back to its pre-crash overlay, then the router tops
        it up to the fleet's current state (missed batches, then any
        missed base adoption) and re-admits it to the ring only once a
        readiness probe answers 200.
        """
        worker.respawning = True
        process: Optional[multiprocessing.process.BaseProcess] = None
        try:
            await asyncio.sleep(delay)
            if self._draining:
                return
            worker.generation += 1
            spec = self._worker_spec(worker.worker_id, worker.generation)
            worker.spec = spec
            process, parent_conn = self._spawn_process(spec)
            worker.process = process
            worker.conn = parent_conn
            loop = asyncio.get_running_loop()
            kind, value = await loop.run_in_executor(
                None, self._await_ready, worker
            )
            if kind != "ready":
                raise FleetError(
                    f"worker {worker.worker_id} respawn failed: {value}"
                )
            worker.port = value
            await self._catch_up(worker)
            status, _, _body = await self._upstream(
                worker, "GET", "/health", resend=True
            )
            if status != 200:
                raise FleetError(
                    f"worker {worker.worker_id} readiness probe answered "
                    f"HTTP {status}"
                )
            worker.up = True
            worker.probe_failures = 0
            worker.last_error = None
            self._rebuild_ring()
            self.recorder.incr("fleet.worker.respawns")
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.recorder.incr("fleet.worker.respawn_failures")
            worker.last_error = f"respawn failed: {exc}"
            if process is not None and process.is_alive():
                process.kill()
            if not self._draining:
                # The failed attempt counts as another death: the
                # backoff doubles and the flap circuit eventually trips.
                self._register_death(worker)
        finally:
            worker.respawning = False

    async def _live_block(self, worker: _Worker) -> Optional[dict]:
        """The worker's ``/stats`` live block, or None when not live."""
        status, _, body = await self._upstream(
            worker, "GET", "/stats", resend=True
        )
        if status != 200:
            raise FleetError(
                f"worker {worker.worker_id} stats answered HTTP {status}"
            )
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError as exc:
            raise FleetError(
                f"worker {worker.worker_id} stats unparseable: {exc}"
            )
        live = parsed.get("live") if isinstance(parsed, dict) else None
        return live if isinstance(live, dict) else None

    async def _catch_up(self, worker: _Worker) -> None:
        """Bring a respawned worker to the fleet's current update state.

        Its own WAL already put it back at its pre-crash
        ``(epoch, seqno)``; whatever the fleet accepted while it was
        down is topped up here from the router's retained update
        bodies.  Batches replay strictly *before* any base adoption:
        adopting diffs the worker's shadow graph against the new base,
        so the graph must be current first.
        """
        reference = self._first_live()
        if reference is None:
            # Sole survivor: whatever this worker recovered *is* the
            # fleet's state now.
            return
        worker_live = await self._live_block(worker)
        if worker_live is None:
            return  # not a live-update fleet: the index is immutable
        ref_live = await self._live_block(reference)
        if ref_live is None:
            return
        seqno = int(worker_live.get("seqno", 0))
        target_seqno = int(ref_live.get("seqno", 0))
        if seqno < target_seqno:
            missed = [
                body
                for log_seqno, body in self._update_log
                if log_seqno > seqno
            ]
            if len(missed) != target_seqno - seqno:
                raise FleetError(
                    f"worker {worker.worker_id} is "
                    f"{target_seqno - seqno} batches behind but only "
                    f"{len(missed)} are retained for catch-up"
                )
            for body in missed:
                status, _, payload = await self._upstream(
                    worker, "POST", "/admin/update", body
                )
                if status != 200:
                    raise FleetError(
                        f"catch-up batch rejected: HTTP {status} "
                        f"{payload.decode('latin-1', 'replace')[:200]}"
                    )
            self.recorder.incr(
                "fleet.worker.catchup_batches", len(missed)
            )
        epoch = int(worker_live.get("epoch", 1))
        target_epoch = int(ref_live.get("epoch", 1))
        while epoch < target_epoch:
            # Adopt the most recent rebuilt base once per missed epoch:
            # each adoption bumps the worker's epoch by one and replays
            # its post-snapshot batches, so repeating it against the
            # same (newest) base converges on the fleet's watermark
            # without re-deriving intermediate bases.
            if self._last_rebuild is None:
                raise FleetError(
                    f"worker {worker.worker_id} is on epoch {epoch} < "
                    f"{target_epoch} and no rebuilt base is retained"
                )
            path, base_seqno = self._last_rebuild
            body = json.dumps(
                {"path": path, "base_seqno": base_seqno},
                separators=(",", ":"),
            ).encode()
            status, _, payload = await self._upstream(
                worker, "POST", "/admin/reload/prepare", body
            )
            if status == 200:
                status, _, payload = await self._upstream(
                    worker, "POST", "/admin/reload/commit", b"{}"
                )
            if status != 200:
                raise FleetError(
                    f"catch-up reload failed: HTTP {status} "
                    f"{payload.decode('latin-1', 'replace')[:200]}"
                )
            epoch += 1
            self.recorder.incr("fleet.worker.catchup_reloads")

    async def _supervise(self) -> None:
        """Proactive liveness probing of every in-ring worker.

        A dead process is ejected the moment the probe sees it; a live
        process that fails ``_PROBE_STRIKES`` consecutive HTTP probes
        is presumed wedged, killed, and ejected.  Reactive detection
        (a failed proxied request) still fires between probes — this
        loop is the backstop for idle fleets, not the fast path.
        """
        interval = self.config.probe_interval_s
        while not self._draining:
            await asyncio.sleep(interval)
            if self._draining:
                return
            for worker in list(self.workers):
                if not worker.up or worker.respawning:
                    continue
                if not worker.process.is_alive():
                    self._on_worker_death(
                        worker,
                        "process exited with code "
                        f"{worker.process.exitcode}",
                    )
                    continue
                try:
                    await self._upstream(worker, "GET", "/health")
                except FleetError:
                    if not worker.up:
                        continue  # the reactive path already ejected it
                    worker.probe_failures += 1
                    if worker.probe_failures >= _PROBE_STRIKES:
                        if worker.process.is_alive():
                            worker.process.kill()
                        self._on_worker_death(
                            worker,
                            f"{_PROBE_STRIKES} consecutive liveness "
                            "probes failed",
                        )
                else:
                    worker.probe_failures = 0

    # ------------------------------------------------------------------
    # upstream plumbing
    # ------------------------------------------------------------------
    async def _acquire(self, worker: _Worker):
        while worker.pool:
            reader, writer = worker.pool.pop()
            if writer.is_closing():
                continue
            return reader, writer
        return await asyncio.open_connection("127.0.0.1", worker.port)

    def _release(self, worker: _Worker, reader, writer) -> None:
        if len(worker.pool) < _POOL_SIZE and not writer.is_closing():
            worker.pool.append((reader, writer))
        else:
            writer.close()

    @staticmethod
    def _request_bytes(
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Sequence[Tuple[str, str]] = (),
    ) -> bytes:
        lines = [
            f"{method} {path} HTTP/1.1",
            "Host: fleet",
            "Connection: keep-alive",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers)
        if body:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + body if body else head

    async def _upstream(
        self,
        worker: _Worker,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Sequence[Tuple[str, str]] = (),
        *,
        resend: bool = False,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One proxied request; ``(status, headers, raw body)``.

        A transport failure mid-request (worker restart, injected
        connection reset) closes the pooled connection; idempotent
        requests are resent up to ``_UPSTREAM_RESENDS`` times on a
        fresh connection before the failure propagates.
        """
        request = self._request_bytes(method, path, body, headers)
        attempts = 1 + (_UPSTREAM_RESENDS if resend else 0)
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                self.recorder.incr("fleet.upstream.resends")
            try:
                reader, writer = await self._acquire(worker)
            except OSError as exc:
                last_error = exc
                self.recorder.incr("fleet.upstream.connect_errors")
                await asyncio.sleep(0.01 * attempt)
                continue
            try:
                writer.write(request)
                await writer.drain()
                status, response_headers, payload = await read_raw_response(
                    reader
                )
            except (
                OSError,
                HTTPProtocolError,
                asyncio.IncompleteReadError,
            ) as exc:
                writer.close()
                last_error = exc
                self.recorder.incr("fleet.upstream.transport_errors")
                continue
            self._release(worker, reader, writer)
            return status, response_headers, payload
        if worker.up and worker.process.is_alive():
            # A freshly SIGKILLed process can reset its connections a
            # beat before ``waitpid`` reports it dead; give the kernel
            # a moment so the death is ejected *now*, not one failed
            # request later.
            await asyncio.get_running_loop().run_in_executor(
                None, worker.process.join, 0.1
            )
        if worker.up and not worker.process.is_alive():
            # Reactive detection: the connection died because the
            # process did.  Eject it now so the caller's retry (and
            # every queued request) re-dispatches onto survivors.
            self._on_worker_death(
                worker, f"connection lost: {last_error}"
            )
        raise FleetError(
            f"worker {worker.worker_id} unreachable after {attempts} "
            f"attempt(s): {last_error}"
        )

    def _reframe(
        self,
        status: int,
        headers: Dict[str, str],
        payload: bytes,
        keep_alive: bool,
    ) -> bytes:
        extra = [
            (canonical, headers[lower])
            for lower, canonical in _FORWARD_HEADERS
            if lower in headers
        ]
        return response_bytes(
            status, payload, keep_alive=keep_alive, extra_headers=extra
        )

    def _error(
        self, status: int, message: str, keep_alive: bool
    ) -> bytes:
        return response_bytes(
            status, {"error": message}, keep_alive=keep_alive
        )

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                if self._draining:
                    break
                head = await read_head(reader)
                if head is None:
                    break
                request = await parse_request(head, reader)
                self._inflight += 1
                try:
                    out = await self._handle(request)
                finally:
                    self._inflight -= 1
                writer.write(out)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (
            HTTPProtocolError,
            OSError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._connections.discard(task)
            writer.close()

    def _sample_trace(self):
        """A router-rooted trace tuple for 1 in N untraced requests."""
        sampler = self._trace_sampler
        if sampler is None or not sampler.keep():
            return None
        ctx = TraceContext.generate()
        return ctx.trace_id, ctx.span_id, None

    def _trace_for(self, request: Request):
        """The request's trace tuple ``(trace_id, span_id, parent_id)``.

        An inbound sampled ``traceparent`` is always honoured (the
        router span becomes a child of the client's span); an explicit
        unsampled context suppresses tracing; absent or malformed
        headers fall back to local 1-in-N sampling — the router is
        where fleet traces are normally rooted.
        """
        if self.tracer is None:
            return None
        header = request.headers.get("traceparent")
        if header is None:
            return self._sample_trace()
        ctx = TraceContext.parse(header)
        if ctx is None:
            return self._sample_trace()
        if not ctx.sampled:
            return None
        return ctx.trace_id, new_span_id(), ctx.span_id

    async def _handle(self, request: Request) -> bytes:
        self.recorder.incr("fleet.requests")
        keep_alive = request.keep_alive
        try:
            if request.path == "/query":
                trace = self._trace_for(request)
                started = time.perf_counter()
                out = await self._handle_query(request, keep_alive, trace)
                if trace is not None and self.tracer is not None:
                    # Status is parseable straight off the response
                    # framing ("HTTP/1.1 NNN ..." — bytes 9:12).
                    self.tracer.record(
                        "fleet.request",
                        trace_id=trace[0],
                        span_id=trace[1],
                        parent_id=trace[2],
                        start=started,
                        duration=time.perf_counter() - started,
                        attrs={
                            "path": request.path,
                            "status": int(out[9:12]),
                        },
                    )
                return out
            if request.path == "/metrics":
                return await self._handle_metrics(request, keep_alive)
            if request.path == "/health":
                return await self._handle_health(keep_alive)
            if request.path == "/stats":
                return await self._handle_stats(keep_alive)
            if request.path == "/admin/reload":
                return await self._handle_reload(request, keep_alive)
            if request.path == "/admin/update":
                return await self._handle_update(request, keep_alive)
            if request.path == "/admin/profile":
                profiler = self._first_live()
                if profiler is None:
                    return self._unavailable(keep_alive)
                return await self._proxy(profiler, request, keep_alive)
            if request.path == "/admin/trace":
                return await self._handle_trace(request, keep_alive)
            self.recorder.incr("fleet.errors.route")
            return self._error(
                404, f"unknown path {request.path!r}", keep_alive
            )
        except FleetError as exc:
            self.recorder.incr("fleet.errors.upstream")
            return self._error(502, str(exc), keep_alive)

    async def _proxy(
        self,
        worker: _Worker,
        request: Request,
        keep_alive: bool,
        *,
        resend: bool = False,
        trace=None,
    ) -> bytes:
        headers = []
        rid = request.headers.get("x-request-id")
        if rid:
            headers.append(("X-Request-Id", rid))
        if trace is not None:
            # Propagate the router's span as the upstream parent: the
            # worker honours a sampled traceparent unconditionally, so
            # its serve.request span links under fleet.request.
            headers.append(
                ("traceparent", f"00-{trace[0]}-{trace[1]}-01")
            )
        target = request.path
        if request.params:
            query = "&".join(
                f"{name}={value}" for name, value in request.params.items()
            )
            target = f"{request.path}?{query}"
        status, response_headers, payload = await self._upstream(
            worker,
            request.method,
            target,
            request.body or None,
            headers,
            resend=resend,
        )
        return self._reframe(status, response_headers, payload, keep_alive)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _unavailable(self, keep_alive: bool) -> bytes:
        """503 + Retry-After: every worker is down, respawns pending."""
        self.recorder.incr("fleet.errors.unavailable")
        retry_after = max(
            1, int(self.config.respawn_backoff_s * 2 + 0.5)
        )
        return response_bytes(
            503,
            {"error": "no live workers (fleet is respawning)"},
            keep_alive=keep_alive,
            extra_headers=(("Retry-After", str(retry_after)),),
        )

    async def _handle_query(
        self, request: Request, keep_alive: bool, trace=None
    ) -> bytes:
        if request.method == "POST":
            try:
                payload = request.json()
            except Exception:
                payload = None
            if isinstance(payload, dict) and isinstance(
                payload.get("pairs"), list
            ):
                return await self._scatter_pairs(
                    request, payload, keep_alive, trace
                )
            pair = None
            if isinstance(payload, dict):
                try:
                    pair = (
                        int(payload["source"]), int(payload["target"])
                    )
                except (KeyError, TypeError, ValueError):
                    pair = None
            return await self._route_query(
                pair, request, keep_alive, trace
            )
        try:
            pair = (
                int(request.params["source"]),
                int(request.params["target"]),
            )
        except (KeyError, TypeError, ValueError):
            pair = None  # a worker answers the 400 consistently
        return await self._route_query(pair, request, keep_alive, trace)

    async def _route_query(
        self, pair, request: Request, keep_alive: bool, trace=None
    ) -> bytes:
        """Proxy one query to its ring owner; re-dispatch once if the
        owner dies mid-request (the retry consults the rebuilt ring)."""
        for attempt in range(2):
            ring = self.ring
            if ring is None:
                return self._unavailable(keep_alive)
            if pair is not None:
                worker = self.workers[ring.owner_of_pair(*pair)]
            else:
                # Malformed request: any live worker produces the
                # canonical 400.
                worker = self._first_live()
                if worker is None:
                    return self._unavailable(keep_alive)
            try:
                return await self._proxy(
                    worker, request, keep_alive, resend=True, trace=trace
                )
            except FleetError:
                # Queries are pure reads: if the owner was ejected
                # (its process died) the survivors answer identically,
                # so retry once against the rebuilt ring.  A failure
                # with the worker still up is the ordinary 502.
                if attempt or (self.ring is ring and worker.up):
                    raise
                self.recorder.incr("fleet.redispatches")
        raise AssertionError("unreachable")  # pragma: no cover

    async def _scatter_pairs(
        self, request: Request, payload: dict, keep_alive: bool, trace=None
    ) -> bytes:
        """Scatter a JSON batch by pair owner; gather in request order.

        A shard whose owner dies mid-request is re-scattered once onto
        the rebuilt survivor ring — a worker crash costs the batch
        latency, never answers.
        """
        ring = self.ring
        if ring is None:
            return self._unavailable(keep_alive)
        pairs = payload["pairs"]
        explain = bool(payload.get("explain", False))
        by_owner: Dict[int, List[int]] = {}
        for position, item in enumerate(pairs):
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 2
            ):
                # Structurally bad batch: one worker reports it whole.
                return await self._route_query(
                    None, request, keep_alive, trace
                )
            try:
                source, target = int(item[0]), int(item[1])
            except (TypeError, ValueError):
                return await self._route_query(
                    None, request, keep_alive, trace
                )
            owner = ring.owner_of_pair(source, target)
            by_owner.setdefault(owner, []).append(position)
        rid = request.headers.get("x-request-id")
        headers = [("X-Request-Id", rid)] if rid else []
        if trace is not None:
            # Every shard of the scatter carries the same parent span,
            # so the merged trace shows N worker spans fanning out
            # under one fleet.request.
            headers.append(
                ("traceparent", f"00-{trace[0]}-{trace[1]}-01")
            )

        async def _one(owner: int, positions: List[int]):
            body = json.dumps(
                {
                    "pairs": [pairs[position] for position in positions],
                    "explain": explain,
                },
                separators=(",", ":"),
            ).encode()
            return await self._upstream(
                self.workers[owner], "POST", "/query", body, headers,
                resend=True,
            )

        async def _gather(assignments):
            outcomes = await asyncio.gather(
                *(
                    _one(owner, positions)
                    for owner, positions in assignments
                ),
                return_exceptions=True,
            )
            return list(zip(assignments, outcomes))

        results: List[object] = [None] * len(pairs)
        worst = 200

        def _settle(settled, failed: Optional[List[int]]) -> None:
            """Fill result slots; owner-unreachable shards go to
            ``failed`` for one re-dispatch round."""
            nonlocal worst
            for (owner, positions), outcome in settled:
                if isinstance(outcome, BaseException):
                    if not isinstance(outcome, FleetError):
                        raise outcome
                    if failed is not None:
                        failed.extend(positions)
                        continue
                    worst = max(worst, 502)
                    for position in positions:
                        results[position] = {"error": str(outcome)}
                    continue
                status, _, body = outcome
                try:
                    answer = json.loads(body) if body else {}
                except json.JSONDecodeError:
                    answer = {}
                slots = (
                    answer.get("results")
                    if isinstance(answer, dict)
                    else None
                )
                if (
                    not isinstance(slots, list)
                    or len(slots) != len(positions)
                ):
                    worst = max(worst, 502)
                    for position in positions:
                        results[position] = {
                            "error": "malformed upstream batch answer"
                        }
                    continue
                worst = max(worst, status)
                for position, slot in zip(positions, slots):
                    results[position] = slot

        failed: List[int] = []
        _settle(await _gather(list(by_owner.items())), failed)
        if failed:
            ring = self.ring
            if ring is None:
                worst = max(worst, 503)
                for position in failed:
                    results[position] = {"error": "no live workers"}
            else:
                self.recorder.incr("fleet.redispatches")
                retry_by_owner: Dict[int, List[int]] = {}
                for position in failed:
                    source, target = (
                        int(pairs[position][0]), int(pairs[position][1])
                    )
                    owner = ring.owner_of_pair(source, target)
                    retry_by_owner.setdefault(owner, []).append(position)
                _settle(
                    await _gather(list(retry_by_owner.items())), None
                )
        extra = [("X-Request-Id", rid)] if rid else []
        return response_bytes(
            worst,
            {"results": results},
            keep_alive=keep_alive,
            extra_headers=extra,
        )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    async def _fanout(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        *,
        resend: bool = False,
    ) -> List[Tuple[_Worker, object]]:
        """The same request to every *live* worker; ``(worker,
        outcome)`` pairs with exceptions as values.  Ejected workers
        are skipped — they catch up from the router's retained update
        bodies when their respawn rejoins."""
        live = self._live_workers()
        outcomes = await asyncio.gather(
            *(
                self._upstream(worker, method, path, body, resend=resend)
                for worker in live
            ),
            return_exceptions=True,
        )
        return list(zip(live, outcomes))

    async def _handle_metrics(
        self, request: Request, keep_alive: bool
    ) -> bytes:
        outcomes = await self._fanout("GET", "/metrics", resend=True)
        snapshots = []
        for worker, outcome in outcomes:
            if isinstance(outcome, BaseException):
                continue
            status, _, body = outcome
            if status != 200:
                continue
            try:
                snapshots.append(json.loads(body))
            except json.JSONDecodeError:
                continue
        merged = merge_metrics_snapshots(
            snapshots + [self.recorder.metrics_snapshot()]
        )
        merged["fleet"] = {
            "workers": len(self.workers),
            "reporting": len(snapshots),
        }
        wants_text = False
        fmt = request.params.get("format")
        if fmt is not None:
            wants_text = fmt == "prometheus"
        else:
            accept = request.headers.get("accept", "")
            wants_text = "text/plain" in accept or "openmetrics" in accept
        if wants_text:
            text = render_prometheus(merged)
            return response_bytes(
                200,
                text.encode("utf-8"),
                keep_alive=keep_alive,
                extra_headers=(
                    ("Content-Type", PROMETHEUS_CONTENT_TYPE),
                ),
            )
        return response_bytes(200, merged, keep_alive=keep_alive)

    async def _handle_health(self, keep_alive: bool) -> bytes:
        outcomes = {
            worker.worker_id: outcome
            for worker, outcome in await self._fanout(
                "GET", "/health", resend=True
            )
        }
        per_worker = []
        healthy = 0
        for worker in self.workers:
            if not worker.up:
                # An ejected worker reports its supervision state: the
                # flap circuit means "down for good", a pending respawn
                # means "coming back".
                if worker.circuit_open:
                    text = "flapped"
                elif self.config.respawn:
                    text = "respawning"
                else:
                    text = "down"
                row = {"worker": worker.worker_id, "status": text}
                if worker.last_error:
                    row["error"] = worker.last_error
                per_worker.append(row)
                continue
            outcome = outcomes.get(worker.worker_id)
            if outcome is None or isinstance(outcome, BaseException):
                per_worker.append(
                    {
                        "worker": worker.worker_id,
                        "status": "unreachable",
                        "error": str(outcome),
                    }
                )
                continue
            status, _, body = outcome
            try:
                answer = json.loads(body) if body else {}
            except json.JSONDecodeError:
                answer = {}
            text = answer.get("status", "unknown")
            per_worker.append(
                {"worker": worker.worker_id, "status": text}
            )
            if status == 200:
                healthy += 1
        if self._draining:
            overall, http_status = "draining", 503
        elif healthy == len(self.workers):
            overall, http_status = "ok", 200
        elif healthy:
            overall, http_status = "degraded", 503
        else:
            overall, http_status = "down", 503
        payload = {
            "status": overall,
            "workers": per_worker,
            "healthy_workers": healthy,
            "workers_down": sum(
                1 for worker in self.workers if not worker.up
            ),
            "inflight": self._inflight,
            "uptime_seconds": time.perf_counter() - self._started_at,
        }
        return response_bytes(
            http_status, payload, keep_alive=keep_alive
        )

    async def _handle_trace(
        self, request: Request, keep_alive: bool
    ) -> bytes:
        """Fleet trace capture: fan out, merge, one Chrome payload.

        Drains every worker's span ring (``format=fragment``) plus the
        router's own, shifts each fragment onto a common wall-clock
        base via its monotonic-offset anchor, and links parent/child
        span ids across the process boundary — one download, the whole
        fleet's story.  ``format=fragment`` returns the router's raw
        fragment instead (for a higher-level merger).
        """
        if request.method != "POST":
            return response_bytes(
                405,
                {"error": "trace capture requires POST"},
                keep_alive=keep_alive,
                extra_headers=(("Allow", "POST"),),
            )
        if self.tracer is None:
            return response_bytes(
                409,
                {"error": "tracing is disabled (trace_buffer = 0)"},
                keep_alive=keep_alive,
            )
        fmt = request.params.get("format", "chrome")
        if fmt not in ("chrome", "fragment"):
            return response_bytes(
                400,
                {"error": f"unknown trace format {fmt!r}"},
                keep_alive=keep_alive,
            )
        clear = request.params.get("clear", "") in _TRUTHY
        if fmt == "fragment":
            return response_bytes(
                200,
                self.tracer.fragment(clear=clear),
                keep_alive=keep_alive,
            )
        path = "/admin/trace?format=fragment"
        if clear:
            path += "&clear=1"
        outcomes = await self._fanout("POST", path, b"{}")
        fragments = [self.tracer.fragment(clear=clear)]
        reporting = 0
        for worker, outcome in outcomes:
            if isinstance(outcome, BaseException):
                continue
            status, _, body = outcome
            if status != 200:
                continue
            try:
                fragment = json.loads(body)
            except json.JSONDecodeError:
                continue
            if isinstance(fragment, dict):
                fragments.append(fragment)
                reporting += 1
        merged = merge_trace_fragments(fragments)
        self.recorder.incr("fleet.trace.captures")
        merged["fleet"] = {
            "workers": len(self.workers),
            "reporting": reporting,
        }
        return response_bytes(200, merged, keep_alive=keep_alive)

    async def _handle_stats(self, keep_alive: bool) -> bytes:
        outcomes = await self._fanout("GET", "/stats", resend=True)
        stats: Dict[int, dict] = {}
        for worker, outcome in outcomes:
            if isinstance(outcome, BaseException):
                continue
            status, _, body = outcome
            if status != 200:
                continue
            try:
                parsed = json.loads(body) if body else {}
            except json.JSONDecodeError:
                continue
            if isinstance(parsed, dict):
                stats[worker.worker_id] = parsed
        if not stats:
            if not self._live_workers():
                return self._unavailable(keep_alive)
            self.recorder.incr("fleet.errors.upstream")
            return self._error(
                502, "no worker could report stats", keep_alive
            )
        # Worker 0 (or the lowest reporting id) provides the base
        # payload — index metadata, batcher and breaker snapshots are
        # representative — and the fleet block carries what differs.
        payload = stats[min(stats)]
        payload["fleet"] = {
            "workers": len(self.workers),
            "reporting": len(stats),
            "index_path": self.index_path,
            "per_worker": self._per_worker_rows(stats),
            "supervisor": self._supervisor_snapshot(),
        }
        merged_pairs = self._merge_top_pairs(stats)
        if merged_pairs is not None:
            payload["top_pairs"] = merged_pairs
        return response_bytes(200, payload, keep_alive=keep_alive)

    def _per_worker_rows(self, stats: Dict[int, dict]) -> List[dict]:
        """One freshness/throughput row per reporting worker.

        ``epoch_lag``/``seqno_lag`` are relative to the fleet maximum —
        a worker behind its peers is the one that would serve stale
        counts, and ``repro-spc top`` renders exactly these rows.
        """
        live_by_worker = {
            worker_id: parsed["live"]
            for worker_id, parsed in stats.items()
            if isinstance(parsed.get("live"), dict)
        }
        max_epoch = max(
            (live.get("epoch", 0) for live in live_by_worker.values()),
            default=0,
        )
        max_seqno = max(
            (live.get("seqno", 0) for live in live_by_worker.values()),
            default=0,
        )
        rows = []
        for worker_id in sorted(stats):
            parsed = stats[worker_id]
            window = parsed.get("window") or {}
            latency = window.get("latency_ms") or {}
            row = {
                "worker": worker_id,
                "requests": window.get("requests", 0),
                "qps": window.get("qps", 0.0),
                "p99_ms": latency.get("p99", 0.0),
                "cache_hit_rate": window.get("cache_hit_rate", 0.0),
            }
            live = live_by_worker.get(worker_id)
            if live is not None:
                epoch = live.get("epoch", 0)
                seqno = live.get("seqno", 0)
                row["epoch"] = epoch
                row["seqno"] = seqno
                row["epoch_lag"] = max_epoch - epoch
                row["seqno_lag"] = max_seqno - seqno
                if "staleness_s" in live:
                    row["staleness_s"] = live["staleness_s"]
            rows.append(row)
        return rows

    def _supervisor_snapshot(self) -> dict:
        """Per-worker supervision state for the ``/stats`` fleet block."""
        return {
            "respawn": self.config.respawn,
            "probe_interval_s": self.config.probe_interval_s,
            "workers_down": sum(
                1 for worker in self.workers if not worker.up
            ),
            "respawns": sum(
                worker.generation for worker in self.workers
            ),
            "workers": [
                {
                    "worker": worker.worker_id,
                    "up": worker.up,
                    "generation": worker.generation,
                    "deaths": worker.total_deaths,
                    "circuit_open": worker.circuit_open,
                }
                for worker in self.workers
            ],
        }

    def _merge_top_pairs(self, stats: Dict[int, dict]) -> Optional[dict]:
        """Fleet-wide heavy hitters: merge the workers' sketches.

        Space-Saving summaries are mergeable, so the fleet's hot pairs
        come out with the same bounded error as one big sketch; the
        cache-attribution counters are summed across workers.
        """
        sketches = []
        hot = {"hits": 0, "misses": 0}
        tail = {"hits": 0, "misses": 0}
        for parsed in stats.values():
            block = parsed.get("top_pairs")
            if not isinstance(block, dict):
                continue
            sketch = block.get("sketch")
            if isinstance(sketch, dict):
                try:
                    sketches.append(SpaceSaving.from_dict(sketch))
                except (KeyError, TypeError, ValueError):
                    continue
            attribution = block.get("cache_attribution") or {}
            for side, totals in (("hot", hot), ("tail", tail)):
                counts = attribution.get(side) or {}
                totals["hits"] += counts.get("hits", 0)
                totals["misses"] += counts.get("misses", 0)
        if not sketches:
            return None
        merged = SpaceSaving.merge(
            sketches,
            capacity=self.config.top_pairs_capacity or None,
        )
        for totals in (hot, tail):
            seen = totals["hits"] + totals["misses"]
            totals["hit_rate"] = totals["hits"] / seen if seen else 0.0
        return {
            "sketch": merged.to_dict(),
            "top": [
                {"pair": list(key), "count": count, "error": error}
                for key, count, error in merged.top(20)
            ],
            "cache_attribution": {"hot": hot, "tail": tail},
        }

    # ------------------------------------------------------------------
    # fleet reload: two-phase commit
    # ------------------------------------------------------------------
    async def _handle_reload(
        self, request: Request, keep_alive: bool
    ) -> bytes:
        if request.method != "POST":
            return response_bytes(
                405,
                {"error": "reload requires POST"},
                keep_alive=keep_alive,
                extra_headers=(("Allow", "POST"),),
            )
        if not self._live_workers():
            return self._unavailable(keep_alive)
        body = request.body or b"{}"
        prepared = await self._fanout(
            "POST", "/admin/reload/prepare", body
        )
        failures = self._phase_failures(prepared)
        if failures:
            # One bad worker (or one corrupt file) rejects the reload
            # fleet-wide; every staged index is dropped and the old
            # index keeps serving everywhere.
            await self._fanout("POST", "/admin/reload/abort", b"{}")
            self.recorder.incr("fleet.reload.failed")
            return response_bytes(
                409,
                {"reloaded": False, "errors": failures},
                keep_alive=keep_alive,
            )
        committed = await self._fanout(
            "POST", "/admin/reload/commit", b"{}"
        )
        commit_failures = self._phase_failures(committed)
        if commit_failures:  # pragma: no cover - commit cannot fail
            self.recorder.incr("fleet.reload.failed")
            return response_bytes(
                500,
                {"reloaded": False, "errors": commit_failures},
                keep_alive=keep_alive,
            )
        self.recorder.incr("fleet.reload.count")
        return response_bytes(
            200,
            {"reloaded": True, "workers": len(committed)},
            keep_alive=keep_alive,
        )

    # ------------------------------------------------------------------
    # fleet live updates: two-phase commit + coordinated rebuild
    # ------------------------------------------------------------------
    async def _handle_update(
        self, request: Request, keep_alive: bool
    ) -> bytes:
        if request.method != "POST":
            return response_bytes(
                405,
                {"error": "update requires POST"},
                keep_alive=keep_alive,
                extra_headers=(("Allow", "POST"),),
            )
        if not self._live_workers():
            return self._unavailable(keep_alive)
        body = request.body or b"{}"
        prepared = await self._fanout(
            "POST", "/admin/update/prepare", body
        )
        failures = self._phase_failures(prepared)
        if failures:
            # All-or-nothing across the *live* fleet: the in-ring
            # workers' shadow graphs must stay in lockstep, so one
            # rejection (malformed batch, unknown edge, live updates
            # disabled) drops the batch everywhere.  A worker that
            # *died* mid-phase is ejected instead of failing the batch
            # — it catches up from the router's update log on respawn.
            await self._fanout("POST", "/admin/update/abort", b"{}")
            self.recorder.incr("fleet.update.failed")
            return response_bytes(
                409,
                {"applied": False, "errors": failures},
                keep_alive=keep_alive,
            )
        if not self._live_workers():
            return self._unavailable(keep_alive)
        committed = await self._fanout(
            "POST", "/admin/update/commit", b"{}"
        )
        commit_failures = self._phase_failures(committed)
        if commit_failures:
            # A commit that validated on prepare only fails if a worker
            # broke mid-flight while staying alive; the survivors
            # applied the batch, so report the divergence loudly rather
            # than pretending the fleet is consistent.
            self.recorder.incr("fleet.update.failed")
            return response_bytes(
                500,
                {"applied": False, "errors": commit_failures},
                keep_alive=keep_alive,
            )
        payload = {"applied": True, "workers": len(committed)}
        rebuild_due = False
        for _worker, outcome in committed:
            if isinstance(outcome, BaseException):
                continue
            try:
                report = json.loads(outcome[2])
            except (json.JSONDecodeError, TypeError, IndexError):
                continue
            rebuild_due = rebuild_due or bool(report.get("rebuild_due"))
            for key in (
                "epoch",
                "seqno",
                "updated_edges",
                "submitted_edges",
                "overlay_entries",
            ):
                if key in report and key not in payload:
                    payload[key] = report[key]
        self.recorder.incr("fleet.update.count")
        seqno = payload.get("seqno")
        if isinstance(seqno, int):
            # Retain the accepted body: a respawned worker whose WAL
            # predates this batch replays it straight from here.
            self._update_log.append((seqno, body))
            if len(self._update_log) > _UPDATE_LOG_MAX:
                del self._update_log[: -_UPDATE_LOG_MAX]
        if rebuild_due and self._rebuild_task is None and not self._draining:
            # Single-flight: one background rebuild per burst, no
            # matter how many batches land while it runs.
            self._rebuild_task = asyncio.get_running_loop().create_task(
                self._coordinate_rebuild()
            )
        return response_bytes(200, payload, keep_alive=keep_alive)

    def _phase_failures(
        self, outcomes: Sequence[Tuple[_Worker, object]]
    ) -> List[str]:
        """Per-worker error strings from one fan-out's outcomes.

        A worker whose *process died* mid-phase is not a failure: it is
        ejected (and queued for respawn) and the phase proceeds on the
        survivors — a crash must degrade capacity, not block updates.
        """
        failures = []
        for worker, outcome in outcomes:
            if isinstance(outcome, BaseException):
                if isinstance(outcome, FleetError) and (
                    not worker.up or not worker.process.is_alive()
                ):
                    self._on_worker_death(
                        worker, f"died mid-fanout: {outcome}"
                    )
                    continue
                failures.append(f"worker {worker.worker_id}: {outcome}")
                continue
            status, _, payload = outcome
            if status != 200:
                try:
                    detail = json.loads(payload).get("error", "")
                except (json.JSONDecodeError, AttributeError):
                    detail = payload.decode("latin-1", "replace")[:200]
                failures.append(f"worker {worker.worker_id}: {detail}")
        return failures

    async def _coordinate_rebuild(self) -> None:
        """Rebuild on worker 0, then two-phase swap the whole fleet.

        Worker 0 snapshots its shadow graph, builds a fresh index, and
        saves it next to the serving one; the router then drives the
        ordinary two-phase reload with the saved path *plus* the
        snapshot's ``base_seqno``, so every worker adopts the new base
        and replays exactly its post-snapshot batches onto it.  The
        workers' graphs are identical by construction (updates land
        all-or-nothing), so one build serves all N.
        """
        try:
            builder = self._first_live()
            if builder is None:
                raise FleetError("no live worker can run the rebuild")
            status, _, payload = await self._upstream(
                builder, "POST", "/admin/rebuild", b"{}"
            )
            if status != 200:
                raise FleetError(
                    f"rebuild on worker {builder.worker_id} failed: "
                    f"HTTP {status} {payload.decode('latin-1', 'replace')[:200]}"
                )
            report = json.loads(payload)
            body = json.dumps(
                {
                    "path": report["path"],
                    "base_seqno": report["base_seqno"],
                },
                separators=(",", ":"),
            ).encode()
            prepared = await self._fanout(
                "POST", "/admin/reload/prepare", body
            )
            failures = self._phase_failures(prepared)
            if failures:
                await self._fanout("POST", "/admin/reload/abort", b"{}")
                raise FleetError(
                    f"rebuild swap rejected: {'; '.join(failures)}"
                )
            committed = await self._fanout(
                "POST", "/admin/reload/commit", b"{}"
            )
            commit_failures = self._phase_failures(committed)
            if commit_failures:  # pragma: no cover - commit cannot fail
                raise FleetError(
                    f"rebuild swap commit failed: {'; '.join(commit_failures)}"
                )
            # A worker respawning after this point adopts exactly this
            # base to close any epoch gap.
            self._last_rebuild = (
                str(report["path"]), int(report["base_seqno"])
            )
            self.recorder.incr("fleet.rebuild.count")
        except Exception:
            self.recorder.incr("fleet.rebuild.failed")
        finally:
            self._rebuild_task = None


# ----------------------------------------------------------------------
# metrics merging
# ----------------------------------------------------------------------
def _bucket_bound(label: str) -> float:
    """Numeric upper bound of a histogram bucket label."""
    text = label.split(maxsplit=1)[-1]
    try:
        return float(text)
    except ValueError:
        return float("inf")


def merge_metrics_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge per-worker ``metrics_snapshot()`` dicts into one.

    Counters and gauges are summed (every gauge in the serving layer —
    queue depth, cache size, active connections — is additive across
    workers).  Histograms merge exactly on ``count``/``sum``/``min``/
    ``max`` and bucket-wise on the distribution; the merged quantiles
    are bucket upper bounds (the standard Prometheus-style estimate),
    which is the best any aggregator can do without raw samples.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, List[dict]] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, data in snapshot.get("histograms", {}).items():
            histograms.setdefault(name, []).append(data)
    merged_histograms = {}
    for name, parts in histograms.items():
        live = [part for part in parts if part.get("count")]
        if not live:
            merged_histograms[name] = parts[0]
            continue
        count = sum(part["count"] for part in live)
        total = sum(part["sum"] for part in live)
        low = min(part["min"] for part in live)
        high = max(part["max"] for part in live)
        buckets: Dict[str, int] = {}
        for part in live:
            for label, bucket_count in part.get("buckets", {}).items():
                buckets[label] = buckets.get(label, 0) + bucket_count
        ordered = sorted(buckets.items(), key=lambda kv: _bucket_bound(kv[0]))
        quantiles = {}
        for quantile, key in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
            needed = quantile * count
            seen = 0
            value = high
            for label, bucket_count in ordered:
                seen += bucket_count
                if seen >= needed:
                    bound = _bucket_bound(label)
                    value = bound if bound != float("inf") else high
                    break
            quantiles[key] = value
        merged_histograms[name] = {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "mean": total / count,
            **quantiles,
            "buckets": dict(ordered),
        }
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": merged_histograms,
    }


# ----------------------------------------------------------------------
# thread runner (tests, benchmarks)
# ----------------------------------------------------------------------
class FleetThread:
    """Run a :class:`FleetRouter` on a daemon thread with its own loop.

    The fleet analogue of :class:`~repro.serve.runner.ServerThread`::

        with FleetThread(path, workers=2) as (host, port):
            report = replay(host, port, pairs)
    """

    def __init__(
        self,
        index_path: str,
        workers: int,
        config: Optional[ServeConfig] = None,
        **router_kwargs,
    ) -> None:
        import threading

        self._index_path = str(index_path)
        self._workers = workers
        self._config = config or ServeConfig(port=0)
        self._router_kwargs = router_kwargs
        self.router: Optional[FleetRouter] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="spc-fleet", daemon=True
        )

    def start(self, timeout: float = 120.0) -> Tuple[str, int]:
        """Start the fleet; returns the router's ``(host, port)``."""
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("fleet thread did not start in time")
        if self._failure is not None:
            raise RuntimeError(
                f"fleet failed to start: {self._failure!r}"
            ) from self._failure
        assert self.router is not None
        return self.router.host, self.router.port

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the fleet and join the thread."""
        if (
            self._loop is not None
            and self.router is not None
            and not self._loop.is_closed()
        ):
            shutdown = self.router.shutdown()
            try:
                asyncio.run_coroutine_threadsafe(
                    shutdown, self._loop
                ).result(timeout)
            except (RuntimeError, asyncio.CancelledError):
                shutdown.close()  # loop already gone: fleet finished
        self._thread.join(timeout)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        self.router = FleetRouter(
            self._index_path,
            self._workers,
            self._config,
            **self._router_kwargs,
        )
        await self.router.start()
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.router.wait_stopped()

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

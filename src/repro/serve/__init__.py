"""Concurrent query serving: HTTP front end over the batch kernel.

The indexes answer ``Q(s, t)`` fastest through :meth:`SPCIndex.query_batch`
(one vectorised arena scan amortises id and LCA resolution), but a
network server receives queries one at a time.  This package closes the
gap with a **micro-batching coalescer**: concurrent in-flight requests
are gathered for a bounded window (``max_batch`` requests or
``max_wait_us`` microseconds, whichever first) and resolved in a single
``query_batch`` call, so throughput under load approaches the batch
kernel rather than the per-pair path.

Layers, innermost first:

* :mod:`repro.serve.cache` — LRU result cache on normalized
  ``(min(s, t), max(s, t))`` keys (queries are symmetric).
* :mod:`repro.serve.coalescer` — the :class:`MicroBatcher` turning
  awaitable single submissions into ``query_batch`` calls on a worker
  thread.
* :mod:`repro.serve.http` — minimal stdlib HTTP/1.1 framing over
  asyncio streams.
* :mod:`repro.serve.server` — :class:`SPCServer`: routing, admission
  control (load shedding), per-request deadlines, request correlation
  ids + structured request logging, ``/health`` (SLO-aware readiness),
  ``/metrics`` (JSON or Prometheus text), ``/stats`` (rolling SLO
  window), graceful drain on SIGTERM.
* :mod:`repro.serve.client` — workload-replay load generator reporting
  achieved QPS, latency percentiles, and request-id echo errors.
* :mod:`repro.serve.runner` — :class:`ServerThread`, a helper running a
  server on a daemon thread (tests, benchmarks, examples).
* :mod:`repro.serve.fleet` — ``serve --workers N``: a consistent-hash
  router over N worker processes sharing one mmap'd index through the
  OS page cache, with aggregated ``/metrics``/``/health`` and a
  two-phase fleet-wide ``/admin/reload``.
* :mod:`repro.serve.top` — ``repro-spc top``, a polling terminal
  dashboard over ``/stats`` + ``/metrics`` (per-worker rows against a
  fleet router).
* :mod:`repro.serve.analyze` — ``repro-spc analyze``, the workload
  analytics report over the Space-Saving ``top_pairs`` block.

Start one from the command line with ``repro-spc serve index.bin`` and
read :doc:`docs/serving.md </serving>` for the protocol and the knobs.
"""

from repro.serve.analyze import render_analysis
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.client import LoadReport, RetryPolicy, replay, run_workload
from repro.serve.coalescer import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.fleet import (
    FleetRouter,
    FleetThread,
    HashRing,
    merge_metrics_snapshots,
)
from repro.serve.runner import ServerThread
from repro.serve.server import SPCServer
from repro.serve.top import render_dashboard, run_top

__all__ = [
    "CircuitBreaker",
    "FleetRouter",
    "FleetThread",
    "HashRing",
    "LoadReport",
    "MicroBatcher",
    "ResultCache",
    "RetryPolicy",
    "SPCServer",
    "ServeConfig",
    "ServerThread",
    "merge_metrics_snapshots",
    "render_analysis",
    "render_dashboard",
    "replay",
    "run_top",
    "run_workload",
]

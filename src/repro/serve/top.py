"""``repro-spc top`` — a live terminal dashboard over a running server.

Polls ``GET /stats`` (the rolling SLO window) and ``GET /metrics`` (the
lifetime JSON snapshot) and renders both as one text frame: QPS and
latency percentiles over the window, error/shed/cache-hit rates, the
batch-size histogram behind the coalescer, and lifetime totals.  The
renderer is a pure function of the two payloads
(:func:`render_dashboard`), so tests drive it with fixture dicts and
the CLI just loops fetch → render → sleep.

Everything here is stdlib: :mod:`http.client` for the two GETs, ANSI
clear-screen for the live mode, ``--once`` for a single frame (usable
from scripts and the CI smoke job).
"""

from __future__ import annotations

import http.client
import json
import sys
import time
from typing import Dict, IO, Optional, Tuple

__all__ = ["fetch_json", "render_dashboard", "run_top"]

#: Clear screen + home — emitted between live frames.
_CLEAR = "\x1b[2J\x1b[H"

_BAR_WIDTH = 30
_BAR_CHAR = "#"


def fetch_json(
    host: str, port: int, path: str, timeout: float = 5.0
) -> Tuple[int, dict]:
    """One synchronous ``GET`` returning ``(status, decoded body)``."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        return response.status, (json.loads(body) if body else {})
    finally:
        conn.close()


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value:9.3f}" if value is not None else "      n/a"


def _fmt_rate(value: Optional[float]) -> str:
    return f"{value * 100:6.2f}%" if value is not None else "    n/a"


def _bars(buckets: Dict[str, int]) -> list:
    """One ``label  count  ###`` line per nonzero histogram bucket."""
    if not buckets:
        return ["  (no samples)"]
    peak = max(buckets.values())
    lines = []
    for label, count in buckets.items():
        bar = _BAR_CHAR * max(1, round(count / peak * _BAR_WIDTH))
        lines.append(f"  {label:>12}  {count:>8}  {bar}")
    return lines


def render_dashboard(
    stats: dict,
    metrics: dict,
    *,
    target: str = "",
    health_status: str = "",
) -> str:
    """One dashboard frame from the ``/stats`` + ``/metrics`` payloads."""
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    window = stats.get("window")
    slo = stats.get("slo", {})
    cache = stats.get("cache", {})
    lines = []
    title = "repro-spc top"
    if target:
        title += f" — {target}"
    status_bits = []
    if health_status:
        status_bits.append(f"health {health_status}")
    if slo:
        status_bits.append(f"slo {slo.get('status', '?')}")
    uptime = stats.get("uptime_seconds")
    if uptime is not None:
        status_bits.append(f"up {uptime:.0f}s")
    if status_bits:
        title += "  [" + " · ".join(status_bits) + "]"
    lines.append(title)
    lines.append("=" * len(title))
    if window:
        lines.append(
            f"window {window['window_seconds']}s:"
            f"  qps {window['qps']:8.1f}"
            f"  requests {window['requests']}"
        )
        latency = window["latency_ms"]
        lines.append(
            "latency ms:"
            f"  p50 {_fmt_ms(latency['p50'])}"
            f"  p95 {_fmt_ms(latency['p95'])}"
            f"  p99 {_fmt_ms(latency['p99'])}"
        )
        lines.append(
            "rates:"
            f"  errors {_fmt_rate(window['error_rate'])}"
            f"  shed {_fmt_rate(window['shed_rate'])}"
            f"  cache-hit {_fmt_rate(window['cache_hit_rate'])}"
            f"  queue-peak {window['queue_depth_max']}"
        )
    else:
        lines.append("window: (SLO tracking disabled)")
    for breach in slo.get("breaches", []):
        lines.append(f"BREACH: {breach}")
    lines.append("")
    lines.append(
        "lifetime:"
        f"  requests {counters.get('serve.requests', 0)}"
        f"  ok {counters.get('serve.responses.ok', 0)}"
        f"  shed {counters.get('serve.shed', 0)}"
        f"  timeouts {counters.get('serve.timeouts', 0)}"
    )
    if cache:
        lines.append(
            "cache:"
            f"  size {cache.get('size', 0)}/{cache.get('capacity', 0)}"
            f"  hits {cache.get('hits', 0)}"
            f"  misses {cache.get('misses', 0)}"
            f"  hit-rate {cache.get('hit_rate', 0.0) * 100:.1f}%"
        )
    live = stats.get("live")
    if isinstance(live, dict):
        freshness = (
            f"  staleness {live['staleness_s']:.1f}s"
            if "staleness_s" in live
            else ""
        )
        lines.append(
            "live:"
            f"  epoch {live.get('epoch', 0)}"
            f"  seqno {live.get('seqno', 0)}"
            f"  overlay {live.get('overlay_entries', 0)}"
            + freshness
        )
    fleet = stats.get("fleet")
    if isinstance(fleet, dict) and isinstance(
        fleet.get("per_worker"), list
    ):
        # Against a fleet router /stats carries one row per worker —
        # the at-a-glance answer to "which worker is slow or stale".
        lines.append("")
        lines.append(
            f"fleet ({fleet.get('reporting', '?')}/"
            f"{fleet.get('workers', '?')} workers reporting):"
        )
        lines.append(
            "  worker       qps    p99 ms  cache-hit"
            "   epoch-lag  seqno-lag"
        )
        for row in fleet["per_worker"]:
            line = (
                f"  {row.get('worker', '?'):>6}"
                f"  {row.get('qps', 0.0):>8.1f}"
                f"  {row.get('p99_ms', 0.0):>8.3f}"
                f"  {row.get('cache_hit_rate', 0.0) * 100:>8.2f}%"
            )
            if "epoch_lag" in row:
                line += (
                    f"  {row['epoch_lag']:>10}"
                    f"  {row.get('seqno_lag', 0):>9}"
                )
            lines.append(line)
    batch = histograms.get("serve.batch.size")
    if batch and batch.get("count"):
        lines.append("")
        lines.append(
            f"batch size (n={batch['count']}, mean "
            f"{batch['mean']:.1f}, p95 {batch['p95']:g}):"
        )
        lines.extend(_bars(batch.get("buckets", {})))
    return "\n".join(lines) + "\n"


def run_top(
    host: str,
    port: int,
    *,
    interval: float = 2.0,
    once: bool = False,
    iterations: Optional[int] = None,
    out: Optional[IO[str]] = None,
) -> int:
    """Fetch-render loop; returns a process exit code.

    ``once`` prints a single frame without clearing the screen.
    ``iterations`` bounds the live loop (used by tests); ``None`` runs
    until interrupted.
    """
    stream = out if out is not None else sys.stdout
    target = f"{host}:{port}"
    frame = 0
    while True:
        try:
            _, stats = fetch_json(host, port, "/stats")
            _, metrics = fetch_json(host, port, "/metrics")
            health_code, health = fetch_json(host, port, "/health")
            health_status = health.get("status", f"http {health_code}")
        except (OSError, ValueError, http.client.HTTPException) as exc:
            # HTTPException covers non-HTTP peers (BadStatusLine,
            # RemoteDisconnected) — without it a port that answers but
            # does not speak HTTP produced a traceback instead of the
            # one-line error scripts and the CI smoke job assert on.
            print(f"repro-spc top: cannot reach {target}: {exc}",
                  file=sys.stderr)
            return 1
        text = render_dashboard(
            stats, metrics, target=target, health_status=health_status
        )
        if once:
            stream.write(text)
            return 0
        stream.write(_CLEAR + text)
        stream.flush()
        frame += 1
        if iterations is not None and frame >= iterations:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
    return 0

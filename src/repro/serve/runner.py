"""Run an :class:`SPCServer` on a daemon thread with its own loop.

Tests, benchmarks, and examples need a live server next to a
synchronous caller; :class:`ServerThread` wraps the asyncio lifecycle
(start → serve → drain) behind ``start()``/``stop()`` and hands back
the bound address, so callers never touch the event loop::

    with ServerThread(index, ServeConfig(port=0)) as (host, port):
        report = replay(host, port, pairs)

Extra keyword arguments pass straight through to
:class:`~repro.serve.server.SPCServer`; a durable live tier is one
``updates=recover_coordinator(wal_dir, graph, index)[0]`` away — the
coordinator arrives already replayed to its pre-crash overlay and
keeps appending to the same WAL.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from repro.obs import Recorder
from repro.serve.config import ServeConfig
from repro.serve.server import SPCServer


class ServerThread:
    """Owns one server event loop on a background daemon thread."""

    def __init__(
        self,
        index,
        config: Optional[ServeConfig] = None,
        *,
        recorder: Optional[Recorder] = None,
        **server_kwargs,
    ) -> None:
        self._index = index
        self._config = config or ServeConfig(port=0)
        self._recorder = recorder
        self._server_kwargs = server_kwargs
        self.server: Optional[SPCServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="spc-serve", daemon=True
        )

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Start serving; returns the bound ``(host, port)``."""
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread did not start in time")
        if self._failure is not None:
            raise RuntimeError(
                f"server thread failed to start: {self._failure!r}"
            ) from self._failure
        assert self.server is not None
        return self.server.host, self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        """Trigger a graceful drain and join the thread."""
        if self._loop is not None and self.server is not None:
            try:
                asyncio.run_coroutine_threadsafe(
                    self.server.shutdown(), self._loop
                ).result(timeout)
            except (RuntimeError, asyncio.CancelledError):
                pass  # loop already gone: the server finished on its own
        self._thread.join(timeout)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures to start()
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        self.server = SPCServer(
            self._index,
            self._config,
            recorder=self._recorder,
            **self._server_kwargs,
        )
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.wait_stopped()

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""Betweenness centrality — the paper's flagship application (§I).

Betweenness of ``u`` is ``sum over s != u != t of spc_u(s,t)/spc(s,t)``
where ``spc_u`` counts the shortest paths through ``u``.  Two engines:

* :func:`betweenness_exact` — weighted Brandes [2] over the whole graph;
  exponential-free exact baseline for tests and small graphs.
* :func:`betweenness_sampled` — estimates centrality of chosen vertices
  from sampled pairs using *any* SPC index: by Lemma-1-style
  decomposition, ``spc_u(s,t) = spc(s,u) * spc(u,t)`` whenever
  ``sd(s,u) + sd(u,t) = sd(s,t)`` (and 0 otherwise), so three index
  queries replace a graph traversal.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.base import SPCIndex
from repro.graph.graph import Graph
from repro.types import Vertex


def betweenness_exact(graph: Graph, *, normalized: bool = False) -> Dict[Vertex, float]:
    """Exact betweenness centrality via Brandes' algorithm (weighted).

    Each shortest path counts once regardless of edge count weights
    (run on a plain road network, not on an SPC-Graph with shortcuts).
    With ``normalized=True`` scores are divided by ``(n-1)(n-2)``.
    """
    centrality: Dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}

    for s in graph.vertices():
        # Single-source shortest paths with counts and predecessors.
        dist: Dict[Vertex, float] = {s: 0}
        sigma: Dict[Vertex, int] = {s: 1}
        preds: Dict[Vertex, List[Vertex]] = {s: []}
        settled_order: List[Vertex] = []
        settled = set()
        heap: list = [(0, s)]
        while heap:
            d, v = heappop(heap)
            if v in settled:
                continue
            settled.add(v)
            settled_order.append(v)
            for w, (weight, _count) in graph.adj(v).items():
                if w in settled:
                    continue
                nd = d + weight
                old = dist.get(w)
                if old is None or nd < old:
                    dist[w] = nd
                    sigma[w] = sigma[v]
                    preds[w] = [v]
                    heappush(heap, (nd, w))
                elif nd == old:
                    sigma[w] += sigma[v]
                    preds[w].append(v)

        # Dependency accumulation in reverse settled order.
        delta: Dict[Vertex, float] = {v: 0.0 for v in settled_order}
        for w in reversed(settled_order):
            for v in preds[w]:
                delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
            if w != s:
                centrality[w] += delta[w]

    # Undirected graphs: every pair was counted twice.
    for v in centrality:
        centrality[v] /= 2.0
    if normalized:
        n = graph.num_vertices
        scale = (n - 1) * (n - 2) / 2.0
        if scale > 0:
            for v in centrality:
                centrality[v] /= scale
    return centrality


def _dependency_from(total, first, second):
    """``spc_v(s,t)/spc(s,t)`` from already-answered leg queries.

    ``total`` is ``Q(s,t)`` (``count > 0``), ``first`` is ``Q(s,v)``,
    ``second`` is ``Q(v,t)``; zero unless the legs concatenate into a
    shortest path.
    """
    if first.count == 0 or second.count == 0:
        return 0.0
    if first.distance + second.distance != total.distance:
        return 0.0
    return first.count * second.count / total.count


def pair_dependency(
    index: SPCIndex, vertex: Vertex, source: Vertex, target: Vertex
):
    """Fraction of shortest ``source``-``target`` paths through ``vertex``.

    ``spc_v(s,t) / spc(s,t)`` computed from three index queries; 0 when
    the pair is disconnected or ``vertex`` is off every shortest path.
    Endpoint vertices contribute nothing by convention.
    """
    if vertex == source or vertex == target:
        return 0.0
    total = index.query(source, target)
    if total.count == 0:
        return 0.0
    first = index.query(source, vertex)
    if first.count == 0 or first.distance > total.distance:
        return 0.0
    second = index.query(vertex, target)
    if second.count == 0:
        return 0.0
    if first.distance + second.distance != total.distance:
        return 0.0
    return first.count * second.count / total.count


def edge_dependency(
    index: SPCIndex, u: Vertex, v: Vertex, weight, source: Vertex, target: Vertex
):
    """Fraction of shortest ``source``-``target`` paths using edge ``(u, v)``.

    ``spc_{uv}(s,t) / spc(s,t)`` where a path uses the edge in either
    direction.  ``weight`` is the edge's distance weight.  The building
    block of edge betweenness — the traffic-flow predictor mentioned in
    the paper's introduction.
    """
    total = index.query(source, target)
    if total.count == 0:
        return 0.0
    through = 0
    for a, b in ((u, v), (v, u)):
        first = index.query(source, a)
        if first.count == 0:
            continue
        second = index.query(b, target)
        if second.count == 0:
            continue
        if first.distance + weight + second.distance == total.distance:
            through += first.count * second.count
    return through / total.count


def edge_betweenness_sampled(
    index: SPCIndex,
    edges: Sequence[Tuple[Vertex, Vertex, "int | float"]],
    *,
    population: Sequence[Vertex],
    num_samples: int = 1000,
    seed: int = 0,
) -> Dict[Tuple[Vertex, Vertex], float]:
    """Estimate edge betweenness for ``(u, v, weight)`` edges.

    Samples ordered vertex pairs from ``population`` and averages
    :func:`edge_dependency` — a road-segment load predictor served
    entirely from index lookups.
    """
    rng = random.Random(seed)
    pool = list(population)
    pairs = [
        (rng.choice(pool), rng.choice(pool)) for _ in range(num_samples)
    ]
    pairs = [(s, t) for s, t in pairs if s != t]
    scores: Dict[Tuple[Vertex, Vertex], float] = {
        (u, v): 0.0 for u, v, _w in edges
    }
    if not pairs:
        return scores
    # Batch 1: totals for every sampled pair; disconnected pairs (and
    # their would-be leg queries) drop out here.
    totals = index.query_batch(pairs)
    active = [
        (s, t, total)
        for (s, t), total in zip(pairs, totals)
        if total.count > 0
    ]
    # Batch 2: the four legs of every (pair, edge) combination — the
    # edge used in either direction.
    legs = []
    for s, t, _total in active:
        for u, v, _w in edges:
            legs.extend(((s, u), (v, t), (s, v), (u, t)))
    leg_results = index.query_batch(legs)
    at = 0
    for s, t, total in active:
        for u, v, weight in edges:
            through = 0
            for first, second in (
                (leg_results[at], leg_results[at + 1]),
                (leg_results[at + 2], leg_results[at + 3]),
            ):
                if (
                    first.count
                    and second.count
                    and first.distance + weight + second.distance
                    == total.distance
                ):
                    through += first.count * second.count
            at += 4
            if through:
                scores[(u, v)] += through / total.count
    for key in scores:
        scores[key] /= len(pairs)
    return scores


def betweenness_sampled(
    index: SPCIndex,
    vertices: Sequence[Vertex],
    *,
    pairs: Optional[Iterable[Tuple[Vertex, Vertex]]] = None,
    num_samples: int = 1000,
    population: Optional[Sequence[Vertex]] = None,
    seed: int = 0,
) -> Dict[Vertex, float]:
    """Estimate betweenness of ``vertices`` from sampled pairs.

    Either pass explicit ``pairs`` or let the function sample
    ``num_samples`` ordered pairs uniformly from ``population``
    (which defaults to ``vertices`` — pass the full vertex list of the
    graph for unbiased estimates).  Returns the *average pair
    dependency* per vertex; multiply by the number of ordered pairs to
    approximate raw Brandes scores.
    """
    if pairs is None:
        if population is None:
            population = list(vertices)
        rng = random.Random(seed)
        pool = list(population)
        pairs = [
            (rng.choice(pool), rng.choice(pool)) for _ in range(num_samples)
        ]
    pair_list = [(s, t) for s, t in pairs if s != t]
    scores: Dict[Vertex, float] = {v: 0.0 for v in vertices}
    if not pair_list:
        return scores
    # Batch 1: totals for every sampled pair; disconnected pairs (and
    # their would-be leg queries) drop out here.
    totals = index.query_batch(pair_list)
    active = [
        (s, t, total)
        for (s, t), total in zip(pair_list, totals)
        if total.count > 0
    ]
    # Batch 2: both legs through every candidate vertex at once.
    legs = []
    slots = []
    for s, t, total in active:
        for v in vertices:
            if v == s or v == t:
                continue
            legs.append((s, v))
            legs.append((v, t))
            slots.append((v, total))
    leg_results = index.query_batch(legs)
    for k, (v, total) in enumerate(slots):
        scores[v] += _dependency_from(
            total, leg_results[2 * k], leg_results[2 * k + 1]
        )
    for v in scores:
        scores[v] /= len(pair_list)
    return scores

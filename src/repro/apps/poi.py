"""POI recommendation with path-count tie-breaking (paper §I).

Service providers pick the top-k nearest POIs; when distances are
similar, users prefer destinations reachable by *many* shortest routes
(flexibility under congestion).  :func:`recommend_pois` ranks
candidates by distance and breaks near-ties by shortest path count,
exactly the use case that motivates counting indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.base import SPCIndex
from repro.types import INF, Vertex, Weight


@dataclass(frozen=True)
class POIRecommendation:
    """One ranked POI: where it is, how far, how many best routes."""

    vertex: Vertex
    distance: Weight
    route_count: int


def recommend_pois(
    index: SPCIndex,
    source: Vertex,
    candidates: Sequence[Vertex],
    k: int = 5,
    *,
    tolerance: float = 0.0,
) -> List[POIRecommendation]:
    """Top-``k`` POIs for ``source`` among ``candidates``.

    Ranking: primarily by shortest distance; candidates whose distance
    is within ``(1 + tolerance)`` of a nearer one are considered tied
    and ordered by descending shortest-path count (more route
    flexibility first).  Unreachable candidates are dropped.

    With ``tolerance=0.0`` only exact distance ties are re-ordered by
    count.
    """
    if k <= 0:
        return []
    pois = [poi for poi in candidates if poi != source]
    # One batched call: the source's id and label range resolve once for
    # the whole candidate list.
    results = index.query_batch([(source, poi) for poi in pois])
    scored = [
        POIRecommendation(poi, result.distance, result.count)
        for poi, result in zip(pois, results)
        if result.distance != INF
    ]
    scored.sort(key=lambda rec: (rec.distance, -rec.route_count, rec.vertex))
    if tolerance <= 0:
        return scored[:k]

    # Group near-ties: within each tolerance band, prefer route count.
    ranked: List[POIRecommendation] = []
    i = 0
    while i < len(scored) and len(ranked) < k:
        band_limit = scored[i].distance * (1 + tolerance)
        j = i
        while j < len(scored) and scored[j].distance <= band_limit:
            j += 1
        band = sorted(
            scored[i:j], key=lambda rec: (-rec.route_count, rec.distance, rec.vertex)
        )
        ranked.extend(band)
        i = j
    return ranked[:k]

"""Applications built on shortest path counting indexes."""

from repro.apps.betweenness import (
    betweenness_exact,
    betweenness_sampled,
    edge_betweenness_sampled,
    edge_dependency,
    pair_dependency,
)
from repro.apps.poi import POIRecommendation, recommend_pois

__all__ = [
    "POIRecommendation",
    "betweenness_exact",
    "betweenness_sampled",
    "edge_betweenness_sampled",
    "edge_dependency",
    "pair_dependency",
    "recommend_pois",
]

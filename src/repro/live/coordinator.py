"""UpdateCoordinator: atomic application of streamed weight deltas.

The coordinator owns the *current-weights* graph (a private copy of the
graph the serving index was built from) and the
:class:`~repro.live.overlay.LiveIndex` the serve tier queries.  Each
delta batch is applied under one lock:

1. validate every update (nothing is written on a bad batch),
2. write the new weights into the graph (no-op writes skipped),
3. repair the affected label blocks — the common ancestors of
   ``X(a)``/``X(b)`` per updated edge, deduplicated across the batch —
   with the same SSSPC-and-remove sweep :class:`DynamicCTL` uses,
   diffing each recomputed entry against the immutable base arena,
4. publish a new immutable :class:`OverlayState` (seqno + 1).

Because ``apply_batch`` returns only after step 4, an HTTP caller that
got a 200 is guaranteed every subsequent query reflects the batch —
this is the parity contract the acceptance tests assert against a
counting Dijkstra on the current weights.

When the overlay grows past ``overlay_threshold`` patched entries, the
serve tier calls :meth:`rebuild` (off the event loop) to build a fresh
base index from the updated graph, then :meth:`adopt_base` to swap it
in: epoch + 1, and the overlay shrinks to just the batches that landed
after the rebuild snapshot (usually empty).

A batch whose repair overruns ``freshness_s`` flips the
:class:`StaleRouter`: until the repair lands, queries whose label scan
reaches into an affected block are answered by counting Dijkstra on the
current graph instead of the (stale) overlay.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.ctl import CTLIndex
from repro.exceptions import EdgeError, LiveUpdateError
from repro.graph.graph import Graph
from repro.live.overlay import LiveIndex, OverlayState, PatchEntry
from repro.obs import NULL_RECORDER
from repro.search.dijkstra import ssspc
from repro.search.pairwise import spc_query
from repro.types import INF, QueryResult, Vertex, Weight

#: One edge-weight update ``(a, b, new_weight)`` (normalized form).
WeightUpdate = Tuple[Vertex, Vertex, Weight]

#: Retain at most this many applied batches for rebuild replay; older
#: entries are dropped and a rebuild snapshotting before the drop line
#: falls back to a full-label diff (always correct, just slower).
MAX_BATCH_LOG = 4096


@dataclass(frozen=True)
class UpdateReport:
    """What one applied batch did to the overlay."""

    epoch: int
    seqno: int
    submitted_edges: int
    updated_edges: int
    repaired_nodes: int
    overlay_entries: int
    changed_vertices: FrozenSet[Vertex] = field(default_factory=frozenset)
    seconds: float = 0.0


class StaleRouter:
    """Freshness-deadline fallback for queries racing a slow repair."""

    def __init__(self, coordinator: "UpdateCoordinator") -> None:
        self._coordinator = coordinator

    def overdue(self) -> bool:
        """Whether an in-flight repair has exceeded the deadline."""
        pending = self._coordinator._pending
        if pending is None:
            return False
        started, _ = pending
        return time.monotonic() - started >= self._coordinator.freshness_s

    def route(self, source: Vertex, target: Vertex) -> Optional[QueryResult]:
        """Counting-Dijkstra answer for a possibly-stale pair."""
        coordinator = self._coordinator
        pending = coordinator._pending
        if pending is None:
            return None
        _, min_block = pending
        base, _ = coordinator.live_index.view
        try:
            prefix = base.tree.common_prefix_length(source, target)
        except KeyError:
            return None  # unknown vertex: let the base scan raise
        if prefix <= min_block:
            return None  # scan cannot reach an affected block
        coordinator.recorder.incr("live.fallback.queries")
        return spc_query(coordinator.graph, source, target)


class UpdateCoordinator:
    """Applies delta batches atomically onto a serving CTL index."""

    def __init__(
        self,
        graph: Graph,
        index: CTLIndex,
        *,
        overlay_threshold: int = 0,
        freshness_s: float = 0.0,
        recorder=NULL_RECORDER,
        build_params: Optional[dict] = None,
    ) -> None:
        if not isinstance(index, CTLIndex) or type(index).name != "CTL":
            raise LiveUpdateError(
                "live updates require a CTL index (weight changes never "
                f"invalidate its cut tree); got {type(index).name!r}"
            )
        indexed = set(index.arena.vertices)
        present = set(graph.vertices())
        if not indexed <= present:
            missing = sorted(indexed - present)[:3]
            raise LiveUpdateError(
                "graph does not match the serving index: indexed "
                f"vertices missing from the graph (e.g. {missing})"
            )
        #: The current-weights graph (private copy, mutated per batch).
        self.graph = graph.copy()
        #: Patched entries that trigger a rebuild (0 = never).
        self.overlay_threshold = overlay_threshold
        #: Seconds a repair may lag before queries fall back (0 = never).
        self.freshness_s = freshness_s
        self.recorder = recorder
        self._build_params = dict(build_params or {})
        self.live_index = LiveIndex(index)
        if freshness_s > 0:
            self.live_index.stale_router = StaleRouter(self)
        self._lock = threading.Lock()
        #: Durable :class:`~repro.live.wal.WriteAheadLog`, or ``None``.
        #: When attached, every batch is fsync'd to it *before* the
        #: overlay publishes — see :meth:`attach_wal`.
        self.wal = None
        #: Current weight of every edge ever effectively changed, keyed
        #: by the normalized ``(min, max)`` endpoint pair.  This is what
        #: makes a rotated WAL epoch file self-contained: recovery
        #: replays these weights onto the pristine graph.
        self._dirty_edges: Dict[Tuple[Vertex, Vertex], WeightUpdate] = {}
        #: ``(monotonic start, min affected block_start)`` of the batch
        #: currently being repaired, or ``None``.
        self._pending: Optional[Tuple[float, int]] = None
        #: Applied batches ``(seqno, ((a, b), ...))`` kept for rebuild
        #: replay; trimmed to :data:`MAX_BATCH_LOG`.
        self._batch_log: List[Tuple[int, Tuple[Tuple[Vertex, Vertex], ...]]] = []
        #: Highest seqno evicted from the log (0 = nothing evicted).
        self._log_floor = 0
        self.applied_batches = 0
        self.applied_edges = 0
        self.rebuilds = 0
        self.last_apply_seconds = 0.0

    def attach_wal(self, wal) -> None:
        """Make ``wal`` the durability point of every future batch.

        From here on :meth:`apply_batch` appends (and fsyncs) the batch
        before the overlay swap, so the batch is either durable *and*
        visible or neither; :meth:`adopt_base` rotates the log at the
        new epoch.  Use :func:`repro.live.wal.recover_coordinator` to
        build a coordinator from an existing log.
        """
        self.wal = wal

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate_batch(self, updates) -> List[WeightUpdate]:
        """Normalize and validate a raw delta batch.

        Accepts an iterable of ``(a, b, weight)`` triples (lists or
        tuples, e.g. straight from JSON).  Raises
        :class:`LiveUpdateError` on malformed items and
        :class:`EdgeError` on unknown edges or non-positive weights —
        before any weight is written.
        """
        normalized: List[WeightUpdate] = []
        for item in updates:
            try:
                a, b, weight = item
            except (TypeError, ValueError):
                raise LiveUpdateError(
                    f"delta update must be [a, b, weight], got {item!r}"
                ) from None
            if isinstance(a, bool) or isinstance(b, bool) or not (
                isinstance(a, int) and isinstance(b, int)
            ):
                raise LiveUpdateError(
                    f"delta endpoints must be integers, got {item!r}"
                )
            if not isinstance(weight, (int, float)) or isinstance(weight, bool):
                raise LiveUpdateError(
                    f"delta weight must be a number, got {item!r}"
                )
            if not self.graph.has_edge(a, b):
                raise EdgeError(f"edge ({a}, {b}) is not in the graph")
            if weight <= 0:
                raise EdgeError(
                    f"edge ({a}, {b}): new weight must be positive, "
                    f"got {weight}"
                )
            normalized.append((a, b, weight))
        return normalized

    # ------------------------------------------------------------------
    # batch application
    # ------------------------------------------------------------------
    def apply_batch(self, updates) -> UpdateReport:
        """Validate and apply one delta batch; thread-safe.

        Returns after the overlay reflecting the batch is published, so
        callers can treat the return as the linearisation point.
        """
        normalized = self.validate_batch(updates)
        started = time.perf_counter()
        with self._lock:
            base, state = self.live_index.view
            if self.wal is not None:
                # Durability point: the batch hits disk (fsync'd) before
                # any weight is written or the overlay publishes, so an
                # acknowledged batch survives a crash and a failed
                # append leaves the coordinator untouched.
                self.wal.append_batch(state.epoch, state.seqno + 1, normalized)
            effective: List[Tuple[Vertex, Vertex]] = []
            for a, b, weight in normalized:
                if self.graph.weight(a, b) == weight:
                    continue
                self.graph.add_edge(a, b, weight, self.graph.count(a, b))
                effective.append((a, b))
                key = (a, b) if a <= b else (b, a)
                self._dirty_edges[key] = (a, b, weight)
            changed: Dict[Vertex, Dict[int, Optional[PatchEntry]]] = {}
            affected: Dict[int, object] = {}
            if effective:
                affected = self._affected_union(base, effective)
                nodes = [affected[i] for i in sorted(affected)]
                self._pending = (
                    time.monotonic(),
                    min(node.block_start for node in nodes),
                )
                try:
                    changed = self._diff_repair(base, nodes, state.patches)
                finally:
                    self._pending = None
            new_state = state.with_batch(changed)
            if effective:
                self._batch_log.append((new_state.seqno, tuple(effective)))
                if len(self._batch_log) > MAX_BATCH_LOG:
                    evicted = self._batch_log.pop(0)
                    self._log_floor = evicted[0]
            self.live_index.swap(base, new_state)
            self.applied_batches += 1
            self.applied_edges += len(effective)
            self.last_apply_seconds = time.perf_counter() - started
        rec = self.recorder
        rec.incr("live.updates.batches")
        rec.incr("live.updates.edges", len(effective))
        rec.observe("live.update.apply_seconds", self.last_apply_seconds)
        rec.gauge("live.overlay.entries", new_state.entries)
        return UpdateReport(
            epoch=new_state.epoch,
            seqno=new_state.seqno,
            submitted_edges=len(normalized),
            updated_edges=len(effective),
            repaired_nodes=len(affected),
            overlay_entries=new_state.entries,
            changed_vertices=frozenset(changed),
            seconds=self.last_apply_seconds,
        )

    # ------------------------------------------------------------------
    # rebuild-and-swap
    # ------------------------------------------------------------------
    def should_rebuild(self) -> bool:
        """Whether the overlay passed the configured rebuild threshold."""
        if self.overlay_threshold <= 0:
            return False
        return self.live_index.state.entries >= self.overlay_threshold

    def rebuild(self) -> Tuple[CTLIndex, int]:
        """Build a fresh base index from the current graph.

        Long-running (a full CTL construction) and deliberately *not*
        holding the coordinator lock: update batches keep applying while
        the build runs.  Returns ``(new_index, base_seqno)`` where
        ``base_seqno`` is the last batch the snapshot includes — pass
        both to :meth:`adopt_base`.
        """
        with self._lock:
            snapshot = self.graph.copy()
            base_seqno = self.live_index.state.seqno
        new_index = CTLIndex.build(snapshot, **self._build_params)
        return new_index, base_seqno

    def adopt_base(
        self,
        new_index: CTLIndex,
        base_seqno: int,
        base_path: Optional[str] = None,
    ) -> dict:
        """Swap in a rebuilt base; replay post-snapshot batches onto it.

        The swap itself is one atomic view publication; the only work
        under the lock is re-deriving patches for batches that were
        applied after the rebuild snapshot (none, in the common case).
        When a write-ahead log is attached, adoption also rotates it at
        the new epoch — ``base_path`` (where the rebuilt base was
        saved, if anywhere) is pinned in the new epoch file so a
        recovering worker reloads the same base.
        """
        if not isinstance(new_index, CTLIndex):
            raise LiveUpdateError(
                f"cannot adopt a {type(new_index).__name__} as live base"
            )
        started = time.perf_counter()
        with self._lock:
            state = self.live_index.state
            replayed: List[Tuple[Vertex, Vertex]] = []
            full_diff = base_seqno < self._log_floor
            if full_diff:
                # The batch log no longer reaches back to the snapshot:
                # diff every label block (correct, rarely needed).
                nodes = [
                    new_index.tree.node(i)
                    for i in range(new_index.tree.num_nodes)
                ]
            else:
                for seqno, edges in self._batch_log:
                    if seqno > base_seqno:
                        replayed.extend(edges)
                affected = self._affected_union(new_index, replayed)
                nodes = [affected[i] for i in sorted(affected)]
            changed = self._diff_repair(new_index, nodes, {})
            patches: Dict[Vertex, Dict[int, PatchEntry]] = {}
            min_dirty: Dict[Vertex, int] = {}
            for vertex, positions in changed.items():
                kept = {
                    position: value
                    for position, value in positions.items()
                    if value is not None
                }
                if kept:
                    patches[vertex] = kept
                    min_dirty[vertex] = min(kept)
            new_state = OverlayState(
                state.epoch + 1, state.seqno, patches, min_dirty
            )
            self.live_index.swap(new_index, new_state)
            self._batch_log = [
                entry for entry in self._batch_log if entry[0] > base_seqno
            ]
            self._log_floor = 0
            self.rebuilds += 1
            if self.wal is not None:
                self.wal.rotate(
                    epoch=new_state.epoch,
                    seqno=new_state.seqno,
                    base_seqno=base_seqno,
                    base_path=base_path,
                    weights=list(self._dirty_edges.values()),
                    pending=list(self._batch_log),
                    full_diff=full_diff,
                )
        seconds = time.perf_counter() - started
        self.recorder.incr("live.rebuilds")
        self.recorder.observe("live.rebuild.adopt_seconds", seconds)
        self.recorder.gauge("live.overlay.entries", new_state.entries)
        return {
            "epoch": new_state.epoch,
            "seqno": new_state.seqno,
            "base_seqno": base_seqno,
            "replayed_edges": len(replayed),
            "overlay_entries": new_state.entries,
            "full_diff": full_diff,
            "adopt_seconds": seconds,
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Overlay/version snapshot for ``/stats`` and explain payloads."""
        state = self.live_index.state
        wal = None if self.wal is None else self.wal.stats()
        return {
            "epoch": state.epoch,
            "seqno": state.seqno,
            "wal": wal,
            "overlay_entries": state.entries,
            "poisoned_vertices": state.poisoned_vertices,
            "overlay_threshold": self.overlay_threshold,
            "freshness_s": self.freshness_s,
            "applied_batches": self.applied_batches,
            "applied_edges": self.applied_edges,
            "rebuilds": self.rebuilds,
            "last_apply_seconds": round(self.last_apply_seconds, 6),
            "rebuild_due": self.should_rebuild(),
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _affected_union(
        index: CTLIndex, edges: Sequence[Tuple[Vertex, Vertex]]
    ) -> Dict[int, object]:
        """Deduped union of common-ancestor nodes over updated edges."""
        tree = index.tree
        affected: Dict[int, object] = {}
        for a, b in edges:
            lca = tree.lca_node(a, b)
            if lca.index in affected:
                continue  # ancestors of a known node are already in
            for node in tree.ancestors(lca.index):
                affected[node.index] = node
        return affected

    def _subtree_vertices(self, index: CTLIndex, root) -> set:
        tree = index.tree
        result: set = set()
        stack = [root.index]
        while stack:
            at = stack.pop()
            node = tree.node(at)
            result.update(node.vertices)
            stack.extend(node.children)
        return result

    def _diff_repair(
        self,
        base: CTLIndex,
        nodes,
        current_patches: Dict[Vertex, Dict[int, PatchEntry]],
    ) -> Dict[Vertex, Dict[int, Optional[PatchEntry]]]:
        """Recompute ``nodes``' label blocks; diff against ``base``.

        Returns per-vertex position diffs: a new ``(dist, count)`` where
        the recomputed value differs from the base arena, ``None`` where
        it matches the base again but is currently patched (unpatch).
        """
        arena = base.arena
        changed: Dict[Vertex, Dict[int, Optional[PatchEntry]]] = {}
        for node in nodes:
            members = self._subtree_vertices(base, node)
            subgraph = self.graph.induced_subgraph(members)
            start = node.block_start
            for offset, c in enumerate(node.vertices):
                dist, count = ssspc(subgraph, c)
                position = start + offset
                for u in members:
                    if not subgraph.has_vertex(u):
                        continue  # higher-ranked cut vertex, already done
                    new_dist = dist.get(u, INF)
                    new_count = count.get(u, 0)
                    old_dist, old_count = arena.entry(u, position)
                    if new_dist == old_dist and new_count == old_count:
                        patched = current_patches.get(u)
                        if patched is not None and position in patched:
                            changed.setdefault(u, {})[position] = None
                    else:
                        changed.setdefault(u, {})[position] = (
                            new_dist, new_count
                        )
                subgraph.remove_vertex(c)
        return changed

"""Live updates: streaming edge-weight deltas onto a serving index.

The live tier lets a read-only (often mmap'd) CTL index absorb batched
edge-weight deltas without blocking readers:

* :class:`~repro.live.overlay.OverlayState` /
  :class:`~repro.live.overlay.LiveIndex` — immutable patch-table
  snapshots over the base arena; clean pairs keep the vectorised scan,
  poisoned pairs take a patched scalar merge.
* :class:`~repro.live.coordinator.UpdateCoordinator` — atomic batch
  application (epoch/seqno versioning), overlay-threshold rebuild
  snapshots, and the freshness-deadline Dijkstra fallback.
* :mod:`~repro.live.wal` — the durable write-ahead log: every accepted
  batch is fsync'd (length-prefixed, CRC32-per-record) before it is
  acknowledged, :func:`~repro.live.wal.recover_coordinator` replays it
  on startup/respawn to the exact pre-crash overlay, and
  rebuild-and-swap compacts it by rotating at the new base epoch.
* :mod:`~repro.live.replay` — the timestamped JSON-lines delta file
  format plus the ``repro-spc update-replay`` streaming client.

See ``docs/serving.md`` ("Live updates") for the wire format and
``docs/operations.md`` for the replay and crash-recovery runbooks.
"""

from repro.live.coordinator import (
    MAX_BATCH_LOG,
    StaleRouter,
    UpdateCoordinator,
    UpdateReport,
)
from repro.live.overlay import LiveIndex, OverlayState, patched_scan
from repro.live.replay import (
    DeltaBatch,
    UpdateStreamReport,
    read_delta_file,
    stream_deltas,
    synthesize_deltas,
    write_delta_file,
)
from repro.live.wal import (
    WAL_MAGIC,
    RecoveryReport,
    WalCorruptError,
    WalRecord,
    WalVerifyReport,
    WriteAheadLog,
    recover_coordinator,
    scan_wal,
    verify_wal,
)

__all__ = [
    "DeltaBatch",
    "LiveIndex",
    "MAX_BATCH_LOG",
    "OverlayState",
    "RecoveryReport",
    "StaleRouter",
    "UpdateCoordinator",
    "UpdateReport",
    "UpdateStreamReport",
    "WAL_MAGIC",
    "WalCorruptError",
    "WalRecord",
    "WalVerifyReport",
    "WriteAheadLog",
    "patched_scan",
    "read_delta_file",
    "recover_coordinator",
    "scan_wal",
    "stream_deltas",
    "synthesize_deltas",
    "verify_wal",
    "write_delta_file",
]

"""Live updates: streaming edge-weight deltas onto a serving index.

The live tier lets a read-only (often mmap'd) CTL index absorb batched
edge-weight deltas without blocking readers:

* :class:`~repro.live.overlay.OverlayState` /
  :class:`~repro.live.overlay.LiveIndex` — immutable patch-table
  snapshots over the base arena; clean pairs keep the vectorised scan,
  poisoned pairs take a patched scalar merge.
* :class:`~repro.live.coordinator.UpdateCoordinator` — atomic batch
  application (epoch/seqno versioning), overlay-threshold rebuild
  snapshots, and the freshness-deadline Dijkstra fallback.
* :mod:`~repro.live.replay` — the timestamped JSON-lines delta file
  format plus the ``repro-spc update-replay`` streaming client.

See ``docs/serving.md`` ("Live updates") for the wire format and
``docs/operations.md`` for the replay runbook.
"""

from repro.live.coordinator import (
    MAX_BATCH_LOG,
    StaleRouter,
    UpdateCoordinator,
    UpdateReport,
)
from repro.live.overlay import LiveIndex, OverlayState, patched_scan
from repro.live.replay import (
    DeltaBatch,
    UpdateStreamReport,
    read_delta_file,
    stream_deltas,
    synthesize_deltas,
    write_delta_file,
)

__all__ = [
    "DeltaBatch",
    "LiveIndex",
    "MAX_BATCH_LOG",
    "OverlayState",
    "StaleRouter",
    "UpdateCoordinator",
    "UpdateReport",
    "UpdateStreamReport",
    "patched_scan",
    "read_delta_file",
    "stream_deltas",
    "synthesize_deltas",
    "write_delta_file",
]

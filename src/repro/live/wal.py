"""Durable write-ahead log for streamed weight updates (``repro.live.wal``).

The :class:`~repro.live.coordinator.UpdateCoordinator` keeps the current
weights and the overlay in process memory only — a ``kill -9`` silently
reverts a worker to the weights its index was built from.  This module
makes every acknowledged batch durable: the coordinator appends each
batch here (fsync'd) *before* publishing the overlay, so an HTTP 200
on ``/admin/update`` always implies the batch survives a crash.

On-disk layout — one file per base epoch in the WAL directory::

    wal-000001.log            epoch-1 log (initial base)
    wal-000002.log            epoch-2 log (after one rebuild-and-swap)

Each file starts with the 8-byte magic ``RSPCWAL1`` followed by
length-prefixed records::

    u32-le payload length | u32-le CRC32(payload) | JSON payload

The first record of a file is always a **base** record pinning the
epoch's starting point: the base index path, the ``(epoch, seqno)``
watermark, the cumulative weight of every edge ever changed, and the
post-snapshot batches still in the overlay.  Every subsequent record is
a **batch** record carrying one normalized update batch.  Because the
base record is self-contained, rotation at a rebuild *compacts* the
log: older epoch files are deleted.

Crash semantics:

* an append that dies mid-write leaves a **torn tail** — a final record
  whose header, payload, or CRC is incomplete.  Recovery truncates the
  tail and replays the good prefix: acknowledged batches are never
  lost (the acknowledgement happens after the fsync), unacknowledged
  partial writes are dropped;
* a CRC mismatch *before* the final record is corruption, not a torn
  tail — :func:`recover_coordinator` and ``repro-spc wal-verify``
  refuse it rather than silently dropping acknowledged batches;
* rotation writes the new epoch file to a temporary name, fsyncs it,
  and renames it into place before deleting predecessors, so a crash
  mid-rotation recovers at the previous epoch.

:func:`recover_coordinator` is the startup/respawn entry point: it
reconstructs a coordinator whose graph, overlay, and ``(epoch, seqno)``
watermark are bit-identical to the pre-crash state, then reopens the
log for appending.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.serialize import load_index
from repro.exceptions import LiveUpdateError, ReproError
from repro.live.coordinator import UpdateCoordinator
from repro.live.overlay import OverlayState, PatchEntry
from repro.obs import NULL_RECORDER
from repro.types import Vertex

PathLike = Union[str, Path]

#: File-start magic of a WAL epoch file.
WAL_MAGIC = b"RSPCWAL1"

#: Record framing: payload length, CRC32 of the payload (little-endian).
_HEADER = struct.Struct("<II")


class WalCorruptError(LiveUpdateError):
    """A WAL record before the torn tail failed its integrity checks."""

    def __init__(self, path, offset: int, detail: str) -> None:
        super().__init__(f"{path}: corrupt WAL record at byte {offset}: {detail}")
        self.path = str(path)
        self.offset = offset
        self.detail = detail


@dataclass(frozen=True)
class WalRecord:
    """One decoded record plus where it sits in the file."""

    offset: int
    length: int
    kind: str
    epoch: int
    seqno: int
    payload: dict


@dataclass(frozen=True)
class WalScan:
    """Low-level framing scan of one epoch file."""

    records: Tuple[WalRecord, ...]
    #: Byte offset just past the last good record (the truncate point).
    good_bytes: int
    #: Human description of a torn final record, or ``None``.
    torn: Optional[str]


def scan_wal(path: PathLike) -> WalScan:
    """Frame-scan a WAL file, tolerating a torn final record.

    Raises :class:`WalCorruptError` on a CRC or decode failure that is
    *followed by more data* — only the last record may be damaged.
    """
    data = Path(path).read_bytes()
    if len(data) < len(WAL_MAGIC):
        return WalScan((), 0, f"short magic ({len(data)} bytes)")
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalCorruptError(path, 0, "bad magic")
    records: List[WalRecord] = []
    at = len(WAL_MAGIC)
    while at < len(data):
        if at + _HEADER.size > len(data):
            return WalScan(tuple(records), at, "torn record header")
        length, crc = _HEADER.unpack_from(data, at)
        start = at + _HEADER.size
        if start + length > len(data):
            return WalScan(tuple(records), at, "torn record payload")
        payload_bytes = data[start:start + length]
        tail = start + length == len(data)
        if zlib.crc32(payload_bytes) != crc:
            if tail:
                return WalScan(tuple(records), at, "CRC mismatch on tail")
            raise WalCorruptError(path, at, "CRC mismatch")
        try:
            payload = json.loads(payload_bytes)
            kind = payload["kind"]
            epoch = int(payload["epoch"])
            seqno = int(payload["seqno"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            if tail:
                return WalScan(tuple(records), at, "undecodable tail record")
            raise WalCorruptError(path, at, "undecodable payload") from None
        records.append(WalRecord(at, length, kind, epoch, seqno, payload))
        at = start + length
    return WalScan(tuple(records), at, None)


def _structure_problem(records: Sequence[WalRecord]) -> Optional[str]:
    """Epoch/seqno-continuity check over a good record prefix."""
    if not records:
        return "no complete records"
    base = records[0]
    if base.kind != "base":
        return f"first record is {base.kind!r}, expected 'base'"
    seqno = base.seqno
    for record in records[1:]:
        if record.kind != "batch":
            return f"unexpected {record.kind!r} record at byte {record.offset}"
        if record.epoch != base.epoch:
            return (
                f"epoch jump {base.epoch} -> {record.epoch} "
                f"at byte {record.offset}"
            )
        if record.seqno != seqno + 1:
            return (
                f"seqno gap {seqno} -> {record.seqno} "
                f"at byte {record.offset}"
            )
        seqno = record.seqno
    return None


@dataclass
class WalVerifyReport:
    """Standalone validation of one WAL file (``repro-spc wal-verify``)."""

    path: str
    size: int = 0
    #: Per-record rows: offset, kind, epoch, seqno, payload length.
    records: List[dict] = field(default_factory=list)
    torn_tail: Optional[str] = None
    problem: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.problem is None

    @property
    def watermark(self) -> Tuple[int, int, int]:
        """``(epoch, first seqno, last seqno)`` of the good prefix."""
        if not self.records:
            return (0, 0, 0)
        return (
            self.records[0]["epoch"],
            self.records[0]["seqno"],
            self.records[-1]["seqno"],
        )


def verify_wal(path: PathLike) -> WalVerifyReport:
    """Validate one WAL file: framing, CRCs, and watermark continuity.

    A torn final record is reported but does not fail the check —
    recovery tolerates it.  Corruption *before* the tail does.
    """
    report = WalVerifyReport(path=str(path))
    try:
        report.size = Path(path).stat().st_size
        scan = scan_wal(path)
    except OSError as exc:
        report.problem = f"unreadable: {exc}"
        return report
    except WalCorruptError as exc:
        report.problem = exc.detail + f" at byte {exc.offset}"
        return report
    report.torn_tail = scan.torn
    report.records = [
        {
            "offset": record.offset,
            "kind": record.kind,
            "epoch": record.epoch,
            "seqno": record.seqno,
            "length": record.length,
        }
        for record in scan.records
    ]
    report.problem = _structure_problem(scan.records)
    return report


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover_coordinator` reconstructed."""

    path: Optional[str]
    epoch: int
    seqno: int
    base_seqno: int
    #: Post-snapshot batches re-derived from the base record.
    pending_batches: int
    #: Batch records replayed through ``apply_batch``.
    replayed_batches: int
    #: Cumulative dirty-edge weights written into the graph.
    weights_applied: int
    torn_tail: bool
    #: The rotated base index could not be loaded; patches were
    #: re-derived against the caller's default index instead.
    base_fallback: bool
    #: No usable WAL existed; a fresh log was started.
    fresh: bool


class WriteAheadLog:
    """Appender over the current epoch file of a WAL directory."""

    def __init__(
        self,
        directory: PathLike,
        *,
        recorder=NULL_RECORDER,
        fault_plan=None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.recorder = recorder
        self.fault_plan = fault_plan
        self._handle = None
        self._path: Optional[Path] = None
        self._failed = False
        self.appends = 0
        self.rotations = 0

    # ------------------------------------------------------------------
    # directory layout
    # ------------------------------------------------------------------
    @staticmethod
    def epoch_files(directory: PathLike) -> List[Tuple[int, Path]]:
        """``(epoch, path)`` pairs in the directory, ascending by epoch."""
        found: List[Tuple[int, Path]] = []
        for path in Path(directory).glob("wal-*.log"):
            stem = path.stem[len("wal-"):]
            try:
                found.append((int(stem), path))
            except ValueError:
                continue
        found.sort()
        return found

    @property
    def path(self) -> Optional[Path]:
        return self._path

    @property
    def size_bytes(self) -> int:
        if self._handle is None:
            return 0
        return self._handle.tell()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(
        self,
        *,
        epoch: int = 1,
        seqno: int = 0,
        base_seqno: int = 0,
        base_path: Optional[str] = None,
        weights: Sequence[Tuple[Vertex, Vertex, float]] = (),
        pending: Sequence[Tuple[int, Sequence[Tuple[Vertex, Vertex]]]] = (),
        full_diff: bool = False,
    ) -> None:
        """Write a fresh epoch file (magic + base record) and append to it.

        Also used by :meth:`rotate`; the base record makes the file
        self-contained, which is what lets rotation delete predecessors.
        """
        record = {
            "kind": "base",
            "epoch": int(epoch),
            "seqno": int(seqno),
            "base_seqno": int(base_seqno),
            "base_path": None if base_path is None else str(base_path),
            "weights": [[a, b, w] for a, b, w in weights],
            "pending": [
                [int(s), [[a, b] for a, b in edges]] for s, edges in pending
            ],
            "full_diff": bool(full_diff),
        }
        path = self.directory / f"wal-{int(epoch):06d}.log"
        tmp = path.with_suffix(".log.tmp")
        with open(tmp, "wb") as handle:
            handle.write(WAL_MAGIC + self._frame(record))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._fsync_directory()
        self._close_handle()
        self._handle = open(path, "ab")
        self._path = path
        self._failed = False

    def open_existing(self, path: PathLike, good_bytes: int) -> None:
        """Reopen a recovered epoch file, truncating any torn tail.

        Every other ``wal-*.log`` (older epochs, or newer files that
        held no complete records) and leftover temporaries are deleted:
        ``path`` is self-contained.
        """
        path = Path(path)
        handle = open(path, "r+b")
        handle.truncate(good_bytes)
        handle.seek(0, os.SEEK_END)
        os.fsync(handle.fileno())
        self._close_handle()
        self._handle = handle
        self._path = path
        self._failed = False
        for other in self.directory.glob("wal-*.log"):
            if other != path:
                other.unlink(missing_ok=True)
        for leftover in self.directory.glob("*.tmp"):
            leftover.unlink(missing_ok=True)
        self._fsync_directory()

    def close(self) -> None:
        self._close_handle()

    def _close_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds; rename is still atomic
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    @staticmethod
    def _frame(payload: dict) -> bytes:
        body = json.dumps(payload, separators=(",", ":")).encode()
        return _HEADER.pack(len(body), zlib.crc32(body)) + body

    def append_batch(self, epoch: int, seqno: int, updates) -> None:
        """Durably append one normalized batch; returns after fsync.

        The coordinator calls this *before* publishing the overlay, so
        an acknowledged batch is always on disk.  A failed append
        poisons the log: later appends raise rather than leave a gap.
        """
        if self._handle is None:
            raise LiveUpdateError("write-ahead log is not open")
        if self._failed:
            raise LiveUpdateError(
                "write-ahead log failed on a previous append; "
                "restart to recover"
            )
        frame = self._frame({
            "kind": "batch",
            "epoch": int(epoch),
            "seqno": int(seqno),
            "updates": [[a, b, w] for a, b, w in updates],
        })
        plan = self.fault_plan
        if plan is not None and plan.should_fire("wal.torn_write"):
            # Model a crash mid-write: half the payload reaches disk,
            # then the "process" dies.  The log is poisoned so the
            # torn tail stays final, exactly as recovery expects.
            from repro.faults import InjectedFault

            torn = frame[: _HEADER.size + max(1, (len(frame) - _HEADER.size) // 2)]
            self._handle.write(torn)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._failed = True
            raise InjectedFault("wal.torn_write")
        self._handle.write(frame)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.appends += 1
        self.recorder.incr("live.wal.appends")
        self.recorder.incr("live.wal.bytes", len(frame))

    def rotate(
        self,
        *,
        epoch: int,
        seqno: int,
        base_seqno: int,
        base_path: Optional[str],
        weights,
        pending,
        full_diff: bool = False,
    ) -> None:
        """Compact at a rebuild: start the new epoch file, drop the rest."""
        old = [p for _, p in self.epoch_files(self.directory)]
        self.start(
            epoch=epoch,
            seqno=seqno,
            base_seqno=base_seqno,
            base_path=base_path,
            weights=weights,
            pending=pending,
            full_diff=full_diff,
        )
        for path in old:
            if path != self._path:
                path.unlink(missing_ok=True)
        self.rotations += 1
        self.recorder.incr("live.wal.rotations")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "path": None if self._path is None else str(self._path),
            "size_bytes": self.size_bytes,
            "appends": self.appends,
            "rotations": self.rotations,
            "failed": self._failed,
        }


def recover_coordinator(
    wal_dir: PathLike,
    graph,
    index,
    *,
    overlay_threshold: int = 0,
    freshness_s: float = 0.0,
    recorder=NULL_RECORDER,
    build_params: Optional[dict] = None,
    fault_plan=None,
) -> Tuple[UpdateCoordinator, RecoveryReport]:
    """Reconstruct a WAL-backed coordinator from ``wal_dir``.

    ``graph``/``index`` are the *cold-start* state (the original graph
    file and the index the worker just mmap'd).  The highest usable
    epoch file decides everything else: its base record rebuilds the
    current-weights graph and the post-snapshot overlay, and its batch
    records replay through :meth:`UpdateCoordinator.apply_batch` — a
    deterministic pipeline, so the recovered overlay is bit-identical
    to the pre-crash one.  Returns the coordinator (log attached, open
    for append) plus a :class:`RecoveryReport`.
    """
    wal = WriteAheadLog(wal_dir, recorder=recorder, fault_plan=fault_plan)
    chosen: Optional[Tuple[Path, WalScan]] = None
    for _epoch, path in reversed(WriteAheadLog.epoch_files(wal_dir)):
        scan = scan_wal(path)  # raises WalCorruptError on a bad prefix
        if scan.records:
            chosen = (path, scan)
            break
    if chosen is None:
        coordinator = UpdateCoordinator(
            graph,
            index,
            overlay_threshold=overlay_threshold,
            freshness_s=freshness_s,
            recorder=recorder,
            build_params=build_params,
        )
        wal.start(epoch=1)
        coordinator.attach_wal(wal)
        return coordinator, RecoveryReport(
            path=str(wal.path),
            epoch=1,
            seqno=0,
            base_seqno=0,
            pending_batches=0,
            replayed_batches=0,
            weights_applied=0,
            torn_tail=False,
            base_fallback=False,
            fresh=True,
        )
    path, scan = chosen
    problem = _structure_problem(scan.records)
    if problem is not None:
        raise WalCorruptError(path, scan.records[0].offset, problem)
    base_record = scan.records[0].payload
    epoch = int(base_record["epoch"])
    rotation_seqno = int(base_record["seqno"])
    base_seqno = int(base_record["base_seqno"])
    weights = [(int(a), int(b), w) for a, b, w in base_record["weights"]]
    pending = [
        (int(s), tuple((int(a), int(b)) for a, b in edges))
        for s, edges in base_record["pending"]
    ]

    base_index = index
    base_fallback = False
    saved_base = False
    base_path = base_record.get("base_path")
    if base_path:
        try:
            candidate = load_index(base_path, verify=True)
            if type(candidate).name != "CTL":
                raise LiveUpdateError(
                    f"rotated base {base_path} is not a CTL index"
                )
            base_index = candidate
            saved_base = True
        except (OSError, ReproError):
            base_fallback = True
            recorder.incr("live.wal.base_fallbacks")

    coordinator = UpdateCoordinator(
        graph,
        base_index,
        overlay_threshold=overlay_threshold,
        freshness_s=freshness_s,
        recorder=recorder,
        build_params=build_params,
    )
    for a, b, w in weights:
        coordinator.graph.add_edge(a, b, w, coordinator.graph.count(a, b))

    # Re-derive the overlay at the rotation point.  Against the rotated
    # on-disk base only post-snapshot batches can differ from the base
    # labels; against the caller's default index (no saved base, or the
    # saved one failed to load) every dirty edge can.
    if saved_base and not base_record.get("full_diff"):
        repair_edges = [edge for _, edges in pending for edge in edges]
    else:
        repair_edges = [(a, b) for a, b, _ in weights]
    patches: Dict[Vertex, Dict[int, PatchEntry]] = {}
    min_dirty: Dict[Vertex, int] = {}
    if repair_edges:
        affected = UpdateCoordinator._affected_union(base_index, repair_edges)
        nodes = [affected[i] for i in sorted(affected)]
        changed = coordinator._diff_repair(base_index, nodes, {})
        for vertex, positions in changed.items():
            kept = {
                position: value
                for position, value in positions.items()
                if value is not None
            }
            if kept:
                patches[vertex] = kept
                min_dirty[vertex] = min(kept)
    coordinator.live_index.swap(
        base_index, OverlayState(epoch, rotation_seqno, patches, min_dirty)
    )
    coordinator._batch_log = list(pending)
    coordinator._log_floor = base_seqno
    for a, b, w in weights:
        key = (a, b) if a <= b else (b, a)
        coordinator._dirty_edges[key] = (a, b, w)

    # Replay post-rotation batches through the normal apply pipeline.
    replayed = 0
    for record in scan.records[1:]:
        coordinator.apply_batch(
            [(int(a), int(b), w) for a, b, w in record.payload["updates"]]
        )
        replayed += 1

    wal.open_existing(path, scan.good_bytes)
    wal.appends = replayed
    coordinator.attach_wal(wal)
    state = coordinator.live_index.state
    recorder.incr("live.wal.recoveries")
    return coordinator, RecoveryReport(
        path=str(path),
        epoch=state.epoch,
        seqno=state.seqno,
        base_seqno=base_seqno,
        pending_batches=len(pending),
        replayed_batches=replayed,
        weights_applied=len(weights),
        torn_tail=scan.torn is not None,
        base_fallback=base_fallback,
        fresh=False,
    )

"""Timestamped delta files and the update-replay streaming client.

Wire format — JSON lines, one delta batch per line::

    {"at": 0.0, "updates": [[4, 17, 9], [17, 23, 4]]}
    {"at": 1.5, "updates": [[4, 17, 7]]}

``at`` is the batch's offset in seconds from the start of the recording
and ``updates`` lists ``[a, b, new_weight]`` edge-weight writes.  Blank
lines and ``#`` comment lines are ignored, so files can be annotated.

:func:`stream_deltas` replays such a file against a live server's
``POST /admin/update`` at the recorded rate (or faster/slower via the
``speed`` multiplier; ``speed=0`` streams as fast as the server
acknowledges).  Each POST is synchronous: a batch is only "sent" once
the server confirmed the repair landed, which is what makes replay
reports' epoch/seqno trajectories meaningful.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import LiveUpdateError, ParseError
from repro.graph.graph import Graph
from repro.types import Vertex, Weight

PathLike = Union[str, Path]


@dataclass(frozen=True)
class DeltaBatch:
    """One batch of edge-weight updates at a recorded time offset."""

    at: float
    updates: Tuple[Tuple[Vertex, Vertex, Weight], ...]


@dataclass
class UpdateStreamReport:
    """Outcome of one :func:`stream_deltas` run."""

    batches_sent: int = 0
    batches_failed: int = 0
    updates_sent: int = 0
    #: Wall-clock seconds per acknowledged batch (HTTP round trip).
    apply_latencies: List[float] = field(default_factory=list)
    #: Last epoch/seqno acknowledged by the server.
    last_epoch: int = 0
    last_seqno: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.batches_failed == 0


def read_delta_file(path: PathLike) -> List[DeltaBatch]:
    """Parse a JSON-lines delta file; batches sorted by time offset."""
    batches: List[DeltaBatch] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ParseError(
                    f"invalid JSON in delta file: {exc}", line_number
                ) from None
            if not isinstance(payload, dict):
                raise ParseError(
                    "delta batch must be a JSON object", line_number
                )
            at = payload.get("at", 0.0)
            if not isinstance(at, (int, float)) or isinstance(at, bool):
                raise ParseError(
                    f"batch 'at' must be a number, got {at!r}", line_number
                )
            raw = payload.get("updates")
            if not isinstance(raw, list) or not raw:
                raise ParseError(
                    "batch 'updates' must be a non-empty list", line_number
                )
            updates = []
            for item in raw:
                if (
                    not isinstance(item, (list, tuple))
                    or len(item) != 3
                ):
                    raise ParseError(
                        f"update must be [a, b, weight], got {item!r}",
                        line_number,
                    )
                updates.append(tuple(item))
            batches.append(DeltaBatch(float(at), tuple(updates)))
    batches.sort(key=lambda batch: batch.at)
    return batches


def write_delta_file(path: PathLike, batches: Sequence[DeltaBatch]) -> None:
    """Write batches as JSON lines (the :func:`read_delta_file` format)."""
    with open(path, "w", encoding="utf-8") as handle:
        for batch in batches:
            handle.write(
                json.dumps(
                    {
                        "at": batch.at,
                        "updates": [list(update) for update in batch.updates],
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )


def synthesize_deltas(
    graph: Graph,
    *,
    batches: int,
    edges_per_batch: int = 4,
    interval_s: float = 1.0,
    seed: int = 0,
) -> List[DeltaBatch]:
    """Random weight-delta batches over a graph's existing edges.

    Weights are drawn from ``[1, 2 * w_max]`` so the stream mixes
    increases and decreases; used by CI smoke jobs and benchmarks.
    """
    edges = [(u, v, w) for u, v, w, _ in graph.edges()]
    if not edges:
        raise LiveUpdateError("cannot synthesize deltas: graph has no edges")
    rng = random.Random(seed)
    w_max = max(w for _, _, w in edges)
    high = max(2, int(2 * w_max))
    result: List[DeltaBatch] = []
    for i in range(batches):
        updates = tuple(
            (u, v, rng.randint(1, high))
            for u, v, _ in rng.sample(edges, min(edges_per_batch, len(edges)))
        )
        result.append(DeltaBatch(round(i * interval_s, 6), updates))
    return result


def stream_deltas(
    host: str,
    port: int,
    batches: Sequence[DeltaBatch],
    *,
    speed: float = 1.0,
    timeout_s: float = 30.0,
    on_batch: Optional[Callable[[int, dict], None]] = None,
) -> UpdateStreamReport:
    """POST each batch to ``/admin/update`` at the recorded rate.

    ``speed`` scales the recorded timeline (2.0 = twice as fast,
    ``0`` = no pacing).  Failed batches are recorded and streaming
    continues, mirroring how a real traffic feed outlives one bad
    message.  ``on_batch(index, response_payload)`` fires per 200.
    """
    report = UpdateStreamReport()
    if not batches:
        return report
    connection = http.client.HTTPConnection(host, port, timeout=timeout_s)
    origin = batches[0].at
    started = time.monotonic()
    try:
        for i, batch in enumerate(batches):
            if speed > 0:
                due = started + (batch.at - origin) / speed
                delay = due - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            body = json.dumps(
                {"updates": [list(update) for update in batch.updates]}
            ).encode()
            sent = time.perf_counter()
            try:
                connection.request(
                    "POST",
                    "/admin/update",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                raw = response.read()
                status = response.status
            except (OSError, http.client.HTTPException) as exc:
                report.batches_failed += 1
                report.errors.append(f"batch {i}: {exc}")
                connection.close()
                connection = http.client.HTTPConnection(
                    host, port, timeout=timeout_s
                )
                continue
            elapsed = time.perf_counter() - sent
            if status != 200:
                report.batches_failed += 1
                detail = raw.decode("utf-8", "replace")[:200]
                report.errors.append(f"batch {i}: HTTP {status} {detail}")
                continue
            report.batches_sent += 1
            report.updates_sent += len(batch.updates)
            report.apply_latencies.append(elapsed)
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = {}
            report.last_epoch = int(payload.get("epoch", report.last_epoch))
            report.last_seqno = int(payload.get("seqno", report.last_seqno))
            if on_batch is not None:
                on_batch(i, payload)
    finally:
        connection.close()
    return report

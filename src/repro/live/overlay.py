"""Delta overlay: entry-granularity patches over an immutable arena.

A serving index is read-only — often literal ``mmap`` views over a v4
container — so absorbing edge-weight deltas cannot mutate labels in
place.  Instead the live tier keeps the base :class:`~repro.core.ctl.CTLIndex`
untouched and layers an :class:`OverlayState` on top: a side table of
*patched* label entries plus, per vertex, the smallest patched label
position (``min_dirty``).

The poisoning analysis follows :class:`~repro.core.dynamic.DynamicCTL`
(paper §IV-D.2): an update to edge ``(a, b)`` can only change label
blocks of the common ancestors of ``X(a)`` and ``X(b)``.  Affected
blocks are recomputed with the same SSSPC-and-remove sweep and *diffed*
against the base arena — only entries whose value actually changed are
recorded.  That entry-level diff is what keeps the overlay small and
the clean-pair test sharp: the root node is an ancestor of everything,
so node-level poisoning would degenerate to "all pairs poisoned", while
in practice a weight delta shifts very few root-block entries.

A pair ``(s, t)`` whose scan prefix stops before either endpoint's
first dirty position is *clean* — answered by the base index's
vectorised batch scan, bit-for-bit identical to a fresh build.
Poisoned pairs take a scalar merge of base entries and patches.

Overlay states are immutable snapshots: the coordinator builds a new
state off-thread and publishes it with one attribute store, so readers
never see a half-applied batch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.base import SELF_QUERY_RESULT
from repro.core.ctl import CTLIndex
from repro.exceptions import IndexQueryError
from repro.types import INF, QueryResult, Vertex, Weight

#: A patched label value in the decoded domain (``INF`` when the hub
#: became unreachable).
PatchEntry = Tuple[Weight, int]

#: Sentinel "no dirty position" — larger than any real label length.
CLEAN = 1 << 62


class OverlayState:
    """Immutable snapshot of the patch table at one ``(epoch, seqno)``.

    ``epoch`` counts base-index generations (bumped by rebuild-and-swap),
    ``seqno`` counts applied delta batches since the server started.
    ``patches`` maps a vertex to ``{label position: (dist, count)}``;
    ``min_dirty`` caches each patched vertex's smallest dirty position.
    """

    __slots__ = ("epoch", "seqno", "patches", "min_dirty")

    def __init__(
        self,
        epoch: int,
        seqno: int,
        patches: Dict[Vertex, Dict[int, PatchEntry]],
        min_dirty: Dict[Vertex, int],
    ) -> None:
        self.epoch = epoch
        self.seqno = seqno
        self.patches = patches
        self.min_dirty = min_dirty

    @classmethod
    def initial(cls, epoch: int = 1) -> "OverlayState":
        """An empty overlay for a freshly adopted base index."""
        return cls(epoch, 0, {}, {})

    @property
    def entries(self) -> int:
        """Total patched label entries (the rebuild-threshold measure)."""
        return sum(len(p) for p in self.patches.values())

    @property
    def poisoned_vertices(self) -> int:
        """Vertices with at least one patched entry."""
        return len(self.patches)

    def pair_clean(self, source: Vertex, target: Vertex, prefix: int) -> bool:
        """Whether a scan of ``prefix`` entries sees no patched value."""
        min_dirty = self.min_dirty
        return (
            min_dirty.get(source, CLEAN) >= prefix
            and min_dirty.get(target, CLEAN) >= prefix
        )

    def with_batch(
        self,
        changed: Dict[Vertex, Dict[int, Optional[PatchEntry]]],
    ) -> "OverlayState":
        """A new state with ``changed`` merged in (``None`` = unpatch).

        ``changed`` carries the diff of one repair sweep: positions that
        now differ from the base map to their new value, positions that
        drifted back to the base value map to ``None``.
        """
        patches = dict(self.patches)
        min_dirty = dict(self.min_dirty)
        for vertex, positions in changed.items():
            merged = dict(patches.get(vertex, ()))
            for position, value in positions.items():
                if value is None:
                    merged.pop(position, None)
                else:
                    merged[position] = value
            if merged:
                patches[vertex] = merged
                min_dirty[vertex] = min(merged)
            else:
                patches.pop(vertex, None)
                min_dirty.pop(vertex, None)
        return OverlayState(self.epoch, self.seqno + 1, patches, min_dirty)


class LiveIndex:
    """A ``(base index, overlay)`` view with the SPCIndex query surface.

    The server, micro-batcher, and cache talk to this object exactly as
    they would to a static index; rebuild-and-swap replaces the internal
    view atomically, so in-flight batches finish on the snapshot they
    started with.
    """

    name = "CTL+live"

    def __init__(self, base: CTLIndex, state: Optional[OverlayState] = None):
        self._view: Tuple[CTLIndex, OverlayState] = (
            base,
            state if state is not None else OverlayState.initial(),
        )
        #: Optional freshness-deadline hook.  An object with
        #: ``overdue() -> bool`` (cheap, checked once per call) and
        #: ``route(s, t) -> Optional[QueryResult]`` (returns a
        #: counting-Dijkstra answer for possibly-stale pairs, or
        #: ``None`` to fall through to the overlay scan).
        self.stale_router = None

    # ------------------------------------------------------------------
    # view management
    # ------------------------------------------------------------------
    @property
    def view(self) -> Tuple[CTLIndex, OverlayState]:
        """The current ``(base, overlay)`` snapshot."""
        return self._view

    @property
    def base(self) -> CTLIndex:
        return self._view[0]

    @property
    def state(self) -> OverlayState:
        return self._view[1]

    def swap(self, base: CTLIndex, state: OverlayState) -> None:
        """Atomically publish a new snapshot (single attribute store)."""
        self._view = (base, state)

    # ------------------------------------------------------------------
    # delegated surface
    # ------------------------------------------------------------------
    @property
    def tree(self):
        return self._view[0].tree

    @property
    def build_stats(self):
        return self._view[0].build_stats

    @property
    def provenance(self):
        return getattr(self._view[0], "provenance", None)

    def stats(self):
        return self._view[0].stats()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _prefix(self, base: CTLIndex, source: Vertex, target: Vertex) -> int:
        try:
            return base.tree.common_prefix_length(source, target)
        except KeyError as exc:
            raise IndexQueryError(
                f"vertex {exc.args[0]} is not indexed"
            ) from exc

    def query(self, source: Vertex, target: Vertex) -> QueryResult:
        base, state = self._view
        stale = self.stale_router
        if stale is not None and stale.overdue():
            routed = stale.route(source, target)
            if routed is not None:
                return routed
        if source == target or not state.patches:
            return base.query(source, target)
        prefix = self._prefix(base, source, target)
        if state.pair_clean(source, target, prefix):
            return base.query(source, target)
        return patched_scan(base, state, source, target, prefix)

    def query_batch(self, pairs) -> List[QueryResult]:
        base, state = self._view
        stale = self.stale_router
        if stale is not None and not stale.overdue():
            stale = None
        if not state.patches and stale is None:
            return base.query_batch(pairs)
        pairs = list(pairs)
        results: List[Optional[QueryResult]] = [None] * len(pairs)
        clean_pairs: List[Tuple[Vertex, Vertex]] = []
        clean_slots: List[int] = []
        for slot, (source, target) in enumerate(pairs):
            if stale is not None:
                routed = stale.route(source, target)
                if routed is not None:
                    results[slot] = routed
                    continue
            if source == target:
                clean_pairs.append((source, target))
                clean_slots.append(slot)
                continue
            try:
                prefix = self._prefix(base, source, target)
            except IndexQueryError:
                # Route through the base scan so unknown vertices fail
                # with the exact error a static index raises.
                clean_pairs.append((source, target))
                clean_slots.append(slot)
                continue
            if state.pair_clean(source, target, prefix):
                clean_pairs.append((source, target))
                clean_slots.append(slot)
            else:
                results[slot] = patched_scan(
                    base, state, source, target, prefix
                )
        if clean_pairs:
            for slot, result in zip(
                clean_slots, base.query_batch(clean_pairs)
            ):
                results[slot] = result
        return results

    def query_with_stats(self, source: Vertex, target: Vertex):
        base, state = self._view
        if (
            source == target
            or not state.patches
            or state.pair_clean(
                source, target, self._prefix(base, source, target)
            )
        ):
            return base.query_with_stats(source, target)
        # Poisoned pair: report the patched answer with the scan length
        # as the visited-labels figure (same accounting as the base).
        from repro.core.base import QueryStats

        prefix = self._prefix(base, source, target)
        result = patched_scan(base, state, source, target, prefix)
        return QueryStats(result, prefix)

    def pair_poisoned(self, source: Vertex, target: Vertex) -> bool:
        """Whether ``(s, t)`` currently routes through the patch table."""
        base, state = self._view
        if source == target or not state.patches:
            return False
        try:
            prefix = self._prefix(base, source, target)
        except IndexQueryError:
            return False
        return not state.pair_clean(source, target, prefix)


def patched_scan(
    base: CTLIndex,
    state: OverlayState,
    source: Vertex,
    target: Vertex,
    prefix: int,
) -> QueryResult:
    """CTL-Query over ``prefix`` positions with patch-table overrides."""
    if source == target:
        return SELF_QUERY_RESULT
    arena = base.arena
    ids = arena.vertex_ids
    try:
        sd = ids[source]
        td = ids[target]
    except KeyError as exc:
        raise IndexQueryError(f"vertex {exc.args[0]} is not indexed") from exc
    offsets = arena.offsets
    dist = arena.dist
    count = arena.count
    overflow = arena._overflow
    decode = arena.decode_dist
    start_s = offsets[sd]
    start_t = offsets[td]
    patch_s = state.patches.get(source) or {}
    patch_t = state.patches.get(target) or {}
    best = INF
    total = 0
    for position in range(prefix):
        entry = patch_s.get(position)
        if entry is None:
            at = start_s + position
            d_s = decode(dist[at])
            c_s = count[at]
            if c_s < 0:
                c_s = overflow[at]
        else:
            d_s, c_s = entry
        if d_s == INF:
            continue
        entry = patch_t.get(position)
        if entry is None:
            at = start_t + position
            d_t = decode(dist[at])
            c_t = count[at]
            if c_t < 0:
                c_t = overflow[at]
        else:
            d_t, c_t = entry
        if d_t == INF:
            continue
        d = d_s + d_t
        if d < best:
            best = d
            total = c_s * c_t
        elif d == best:
            total += c_s * c_t
    if total == 0:
        return QueryResult(INF, 0)
    return QueryResult(best, total)

"""Command-line interface: build, inspect, query, and profile SPC indexes.

Installed as the ``repro-spc`` console script::

    repro-spc build network.gr index.json --algorithm ctls
    repro-spc build network.gr index.bin --format binary
    repro-spc query index.json 17 3405
    repro-spc query index.json --pairs workload.txt
    repro-spc stats index.json
    repro-spc generate road 2000 network.gr --seed 7
    repro-spc profile index.json pairs.txt --repeats 3 --batch 512
    repro-spc serve index.json --port 8355 --access-log serve.log
    repro-spc serve index.bin --workers 4
    repro-spc query index.json 17 3405 --explain
    repro-spc top --port 8355 --once
    repro-spc build network.gr index.bin --format binary --progress
    repro-spc profile index.json pairs.txt --flame stacks.txt
    repro-spc bench-report --baseline benchmarks/baselines

    repro-spc verify-index index.bin --graph network.gr
    repro-spc serve index.bin --live-updates --graph network.gr
    repro-spc update-replay deltas.jsonl --port 8355 --speed 2.0
    repro-spc serve index.bin --workers 2 --live-updates \
        --graph network.gr --wal-dir wal/ --respawn
    repro-spc wal-verify wal/worker-0
    repro-spc trace fleet-trace.json --port 8355 --min-cross-links 1
    repro-spc analyze --port 8355

Graphs are DIMACS ``.gr`` files (``.json``/``.txt`` edge lists are
auto-detected by extension); indexes use the formats of
:mod:`repro.core.serialize` — inspectable JSON (v1) or the packed
binary container (v4, mmap-native and checksummed; v3/v2 still
load), auto-detected on load.  ``verify-index`` validates a file's
checksums before deployment, ``serve --workers N`` runs a
multi-process fleet behind one port, and ``serve --fault-plan``
injects deterministic chaos for resilience testing (see
docs/operations.md).

``build``, ``query``, and ``profile`` accept ``--metrics`` (print the
metrics snapshot as JSON on completion) and ``--trace out.json`` (write
a Chrome trace-event file loadable in ``chrome://tracing`` or
Perfetto).  Exit codes: 0 on success — including a disconnected query
pair, which is an answer, not an error — and 1 for real failures (bad
paths, malformed files, unknown vertices).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import repro.obs as obs
from repro.baselines.tl import TLIndex
from repro.bench.measure import profile_queries
from repro.bench.report import render_profile
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.core.serialize import load_index, save_index
from repro.exceptions import ParseError, ReproError
from repro.graph.generators import power_grid_network, road_network
from repro.graph.graph import Graph
from repro.graph.io import read_graph_auto, write_dimacs
from repro.types import INF

_ALGORITHMS = {
    "tl": lambda g, _s, _p: TLIndex.build(g),
    "ctl": lambda g, _s, _p: CTLIndex.build(g),
    "ctls": lambda g, strategy, progress: CTLSIndex.build(
        g, strategy=strategy, progress=progress
    ),
}


def _load_graph(path: str) -> Graph:
    return read_graph_auto(path)


def _require_index_file(path: str) -> None:
    """Fail fast with a one-line error for bad index paths.

    ``stats``/``verify-index``/``serve`` on a missing file or a
    directory should print one actionable line, not a traceback or a
    multi-section corruption report.
    """
    target = Path(path)
    if target.is_dir():
        raise ParseError(f"{path} is a directory, expected an index file")
    if not target.is_file():
        raise ParseError(f"{path}: no such index file")


def _load_pairs(path: str):
    """Parse a query-pair file: one ``source target`` pair per line."""
    pairs = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            fields = text.split()
            if len(fields) != 2:
                raise ParseError(
                    f"expected 'source target', got {text!r}", line_number
                )
            try:
                pairs.append((int(fields[0]), int(fields[1])))
            except ValueError:
                raise ParseError(
                    f"non-integer vertex id in {text!r}", line_number
                ) from None
    if not pairs:
        raise ParseError(f"{path}: no query pairs found")
    return pairs


def _obs_begin(args):
    """Configure the global recorder when ``--trace``/``--metrics`` ask."""
    if getattr(args, "trace", None) or getattr(args, "metrics", False):
        return obs.configure()
    return None


def _obs_end(args, rec) -> None:
    """Emit the requested trace/metrics output and reset the recorder."""
    if rec is None:
        return
    try:
        if args.trace:
            obs.write_chrome_trace(args.trace, rec.trace_events)
            print(f"trace written to {args.trace}")
        if args.metrics:
            print(json.dumps(rec.metrics_snapshot(), indent=2, default=str))
    finally:
        obs.disable()


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.obs.buildphase import (
        BuildPhaseTracker,
        ProgressPrinter,
        make_build_info,
        phase_breakdown,
    )

    rec = _obs_begin(args)
    # Build-phase provenance needs the builder's span stream even when
    # no --trace/--metrics was asked for: capture quietly in that case.
    capture = rec if rec is not None else obs.configure()
    progress_line = print if args.progress else None
    tracker = BuildPhaseTracker(progress_line)
    node_progress = None
    if args.progress:
        node_progress = ProgressPrinter(print)
    try:
        with obs.span("cli.build", algorithm=args.algorithm):
            with tracker.phase("load-graph"):
                graph = _load_graph(args.graph)
            print(f"loaded {graph!r}")
            build = _ALGORITHMS[args.algorithm]
            started = time.perf_counter()
            with tracker.phase("build"):
                index = build(graph, args.strategy, node_progress)
                if node_progress is not None:
                    node_progress.finish()
            elapsed = time.perf_counter() - started
            stats = index.stats()
            print(
                f"built {args.algorithm.upper()} in {elapsed:.2f}s "
                f"(h={stats.height}, w={stats.width}, "
                f"size={stats.size_bytes / 1e6:.2f} MB)"
            )
            phases = phase_breakdown(capture.trace_events)
            if args.progress:
                for name, entry in phases.items():
                    print(
                        f"[build] phase {name:<13} {entry['seconds']:8.3f}s"
                        f"  ({entry['count']} spans)"
                    )
            extras = {"graph": args.graph, "format": args.format}
            if args.algorithm == "ctls":
                extras["strategy"] = args.strategy
            build_info = make_build_info(
                algorithm=args.algorithm,
                build_seconds=elapsed,
                label_entries=stats.total_label_entries,
                phases=phases,
                coarse=tracker.summary(),
                extras=extras,
            )
            with tracker.phase("serialize"):
                save_index(
                    index, args.index, format=args.format,
                    build_info=build_info,
                )
            print(f"saved to {args.index} ({args.format})")
    finally:
        if rec is not None:
            _obs_end(args, rec)
        else:
            obs.disable()
    return 0


def _print_query_result(source: int, target: int, result) -> None:
    if result.distance == INF:
        print(f"Q({source}, {target}): disconnected")
    else:
        print(
            f"Q({source}, {target}): "
            f"distance={result.distance} shortest_paths={result.count}"
        )


def _print_explain(index, source: int, target: int) -> None:
    """The per-query counters behind one answer (``query --explain``).

    Mirrors the server's ``/query`` explain payload: the label scan
    count comes from the same :meth:`SPCIndex.query_with_stats` call,
    so the two report identical numbers for identical pairs.
    """
    parts = []
    try:
        stats = index.query_with_stats(source, target)
        parts.append(f"labels_scanned={stats.visited_labels}")
    except ReproError:
        pass
    tree = getattr(index, "tree", None)
    if tree is not None:
        try:
            node = tree.lca_node(source, target)
            parts.append(f"lca_depth={node.depth}")
            parts.append(f"lca_width={node.size}")
        except (KeyError, AttributeError):
            pass
    if parts:
        print("  explain: " + " ".join(parts))


def _cmd_query(args: argparse.Namespace) -> int:
    if args.pairs is None and (args.source is None or args.target is None):
        raise ParseError("query needs either SOURCE TARGET or --pairs FILE")
    if args.pairs is not None and args.source is not None:
        raise ParseError("give either SOURCE TARGET or --pairs FILE, not both")
    rec = _obs_begin(args)
    try:
        index = load_index(args.index)
        if args.pairs is not None:
            pairs = _load_pairs(args.pairs)
            # One batched call: ids and LCA lookups amortise across the
            # file.  A disconnected pair is an answer, not an error.
            for (s, t), result in zip(pairs, index.query_batch(pairs)):
                _print_query_result(s, t, result)
                if args.explain:
                    _print_explain(index, s, t)
        else:
            _print_query_result(
                args.source, args.target,
                index.query(args.source, args.target),
            )
            if args.explain:
                _print_explain(index, args.source, args.target)
    finally:
        _obs_end(args, rec)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    rec = _obs_begin(args)
    sampler = None
    try:
        index = load_index(args.index)
        pairs = _load_pairs(args.pairs)
        if args.flame:
            from repro.obs.sampling import SamplingProfiler

            sampler = SamplingProfiler().start()
        result = profile_queries(index, pairs, repeats=args.repeats,
                                 batch_size=args.batch, recorder=rec)
        if sampler is not None:
            sampler.stop()
            sampler.write_collapsed(args.flame)
            print(
                f"flamegraph stacks written to {args.flame} "
                f"({sampler.sample_count} samples; render with "
                "flamegraph.pl or speedscope.app)"
            )
        print(render_profile(result))
    finally:
        if sampler is not None and sampler.running:
            sampler.stop()
        _obs_end(args, rec)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """``verify-index``: checksum validation + sampled cross-check.

    Exit 0 only when every section verifies and (with ``--graph``)
    every sampled query matches the online counting-Dijkstra baseline
    exactly — the operator's pre-deploy gate for an index file.
    """
    import random

    from repro.core.serialize import verify_index_file

    _require_index_file(args.index)
    report = verify_index_file(args.index)
    width = max(len(name) for name, _, _ in report)
    failed = []
    for name, ok, detail in report:
        print(f"{name:<{width}}  {'ok' if ok else 'FAIL':<4}  {detail}")
        if not ok:
            failed.append(name)
    if failed:
        print(
            f"error: {args.index}: corrupt sections: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    if args.graph is None:
        print(f"{args.index}: checksums ok")
        return 0
    from repro.baselines.online import OnlineSPC

    index = load_index(args.index)
    graph = _load_graph(args.graph)
    online = OnlineSPC.build(graph)
    vertices = sorted(graph.vertices())
    rng = random.Random(args.seed)
    mismatches = 0
    for _ in range(args.samples):
        source, target = rng.choice(vertices), rng.choice(vertices)
        got = index.query(source, target)
        want = online.query(source, target)
        if (got.distance, got.count) != (want.distance, want.count):
            mismatches += 1
            print(
                f"MISMATCH Q({source}, {target}): index "
                f"d={got.distance} c={got.count}, baseline "
                f"d={want.distance} c={want.count}",
                file=sys.stderr,
            )
    if mismatches:
        print(
            f"error: {args.index}: {mismatches}/{args.samples} sampled "
            "queries disagree with the online baseline",
            file=sys.stderr,
        )
        return 1
    print(
        f"{args.index}: checksums ok, {args.samples} sampled queries "
        "match the online baseline"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan
    from repro.serve import ServeConfig, SPCServer

    _require_index_file(args.index)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        coalesce=not args.no_coalesce,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        cache_size=args.cache_size,
        queue_high_water=args.high_water,
        request_timeout_ms=args.timeout_ms,
        access_log=args.access_log,
        slow_query_ms=args.slow_ms,
        log_sample_every=args.log_sample,
        log_seed=args.log_seed,
        slo_window_s=args.slo_window,
        slo_p99_ms=args.slo_p99_ms,
        slo_error_rate=args.slo_error_rate,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        live_updates=args.live_updates,
        overlay_threshold=args.overlay_threshold,
        update_freshness_s=args.update_freshness_s,
        trace_buffer=args.trace_buffer,
        trace_sample_every=args.trace_sample,
        top_pairs_capacity=args.top_pairs,
        wal_dir=args.wal_dir,
        respawn=args.respawn,
        probe_interval_s=args.probe_interval_s,
    )
    if args.live_updates and args.graph is None:
        raise ParseError("--live-updates needs --graph GRAPH")
    if args.wal_dir is not None and not args.live_updates:
        raise ParseError("--wal-dir needs --live-updates (it logs "
                         "accepted update batches)")
    if args.workers > 1:
        if args.fallback != "none":
            raise ParseError(
                "--fallback is a single-process option; a fleet worker "
                "cannot host the online baseline (drop --workers or "
                "--fallback)"
            )
        return _serve_fleet(args, config)
    index = load_index(args.index)
    if args.fault_plan is not None:
        fault_plan = FaultPlan.parse(args.fault_plan, seed=args.fault_seed)
    else:
        fault_plan = FaultPlan.from_env()  # REPRO_FAULT_PLAN, if set
    fallback = None
    if args.fallback == "online":
        if args.graph is None:
            raise ParseError("--fallback online needs --graph GRAPH")
        from repro.baselines.online import OnlineSPC

        fallback = OnlineSPC.build(_load_graph(args.graph))
    updates = None
    if args.live_updates:
        from repro.live import UpdateCoordinator, recover_coordinator

        if args.wal_dir is not None:
            # Durable mode: replay any existing WAL to the exact
            # pre-crash overlay, then keep logging into it.
            updates, recovery = recover_coordinator(
                args.wal_dir,
                _load_graph(args.graph),
                index,
                overlay_threshold=config.overlay_threshold,
                freshness_s=config.update_freshness_s,
            )
            if not recovery.fresh:
                print(
                    f"recovered from WAL {recovery.path}: epoch "
                    f"{recovery.epoch} seqno {recovery.seqno} "
                    f"({recovery.replayed_batches} batches replayed"
                    + (", torn tail dropped" if recovery.torn_tail else "")
                    + ")",
                    flush=True,
                )
        else:
            updates = UpdateCoordinator(
                _load_graph(args.graph),
                index,
                overlay_threshold=config.overlay_threshold,
                freshness_s=config.update_freshness_s,
            )

    async def _serve() -> None:
        server = SPCServer(
            index,
            config,
            fault_plan=fault_plan,
            fallback=fallback,
            index_path=args.index,
            updates=updates,
        )
        await server.start()
        server.install_signal_handlers()
        mode = "coalesced" if config.coalesce else "uncoalesced"
        if fault_plan is not None and fault_plan.active:
            mode += ", chaos"
        if fallback is not None:
            mode += ", fallback=online"
        if updates is not None:
            mode += ", live"
        print(
            f"serving {type(index).__name__} on "
            f"http://{server.host}:{server.port} ({mode}); "
            "SIGTERM/SIGINT drains and exits, SIGHUP reloads the index",
            flush=True,
        )
        await server.wait_stopped()
        print("drained cleanly", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass  # ctrl-C on platforms without signal-handler support
    return 0


def _serve_fleet(args: argparse.Namespace, config) -> int:
    """``serve --workers N``: consistent-hash router over N processes."""
    import os

    from repro.faults import ENV_PLAN, ENV_SEED
    from repro.serve import FleetRouter

    fault_spec = args.fault_plan
    fault_seed = args.fault_seed
    if fault_spec is None:
        fault_spec = os.environ.get(ENV_PLAN, "").strip() or None
        if fault_spec is not None and ENV_SEED in os.environ:
            fault_seed = int(os.environ[ENV_SEED])

    async def _serve() -> None:
        router = FleetRouter(
            args.index,
            args.workers,
            config,
            fault_spec=fault_spec,
            fault_seed=fault_seed,
            live_graph_path=args.graph if args.live_updates else None,
        )
        await router.start()
        router.install_signal_handlers()
        mode = f"fleet of {args.workers} workers"
        if fault_spec:
            mode += ", chaos"
        if args.live_updates:
            mode += ", live"
        print(
            f"serving {args.index} on http://{router.host}:{router.port} "
            f"({mode}); SIGTERM/SIGINT drains the fleet and exits, "
            "POST /admin/reload swaps the index fleet-wide",
            flush=True,
        )
        await router.wait_stopped()
        print("fleet drained cleanly", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_update_replay(args: argparse.Namespace) -> int:
    """Stream a timestamped delta file at a live server."""
    from repro.live import read_delta_file, stream_deltas

    batches = read_delta_file(args.deltas)
    if not batches:
        print(f"{args.deltas}: no delta batches to stream")
        return 0
    report = stream_deltas(
        args.host,
        args.port,
        batches,
        speed=args.speed,
        timeout_s=args.timeout,
    )
    latencies = sorted(report.apply_latencies)
    p99_ms = (
        latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))] * 1e3
        if latencies
        else 0.0
    )
    print(
        f"streamed {report.batches_sent}/{len(batches)} batches "
        f"({report.updates_sent} edge updates) to "
        f"{args.host}:{args.port}; "
        f"epoch {report.last_epoch} seqno {report.last_seqno}, "
        f"apply p99 {p99_ms:.1f} ms"
    )
    for error in report.errors:
        print(f"  {error}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_wal_verify(args: argparse.Namespace) -> int:
    """Validate WAL file(s): framing, CRCs, watermark continuity."""
    import os

    from repro.live import verify_wal
    from repro.live.wal import WriteAheadLog

    if os.path.isdir(args.path):
        files = [str(path) for _, path in WriteAheadLog.epoch_files(args.path)]
        if not files:
            print(f"error: no wal-*.log files in {args.path}",
                  file=sys.stderr)
            return 1
    else:
        files = [args.path]
    exit_code = 0
    for file_path in files:
        report = verify_wal(file_path)
        print(f"{report.path}: {report.size} bytes, "
              f"{len(report.records)} records")
        for row in report.records:
            print(
                f"  @{row['offset']:>8}  {row['kind']:<5}  "
                f"epoch {row['epoch']}  seqno {row['seqno']}  "
                f"{row['length']} payload bytes  crc ok"
            )
        epoch, first, last = report.watermark
        if report.records:
            print(f"  watermark: epoch {epoch}, seqno {first} -> {last}")
        if report.torn_tail:
            # A torn final record is the expected crash signature;
            # recovery truncates it, so it is a note, not a failure.
            print(f"  torn tail (tolerated on recovery): {report.torn_tail}")
        if not report.ok:
            print(f"error: {report.path}: {report.problem}",
                  file=sys.stderr)
            exit_code = 1
    return exit_code


def _post_json(host: str, port: int, path: str, timeout: float):
    """One synchronous ``POST``; ``(status, decoded JSON body)``."""
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            "POST", path, body=b"{}",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = response.read()
        return response.status, (json.loads(body) if body else {})
    finally:
        conn.close()


def _cmd_trace(args: argparse.Namespace) -> int:
    """``trace``: capture a (fleet-)merged Chrome trace from a server.

    Fetches ``POST /admin/trace?format=chrome`` — against a fleet
    router this drains and merges every worker's span ring plus the
    router's own — validates the payload, counts cross-process
    parent/child links, and writes the file.  ``--min-cross-links``
    turns the capture into an assertion: exit 1 unless at least N
    router→worker span links are present (the CI trace-smoke bar).
    """
    import http.client

    from repro.obs import cross_process_links, validate_chrome_trace

    path = "/admin/trace?format=chrome"
    if args.clear:
        path += "&clear=1"
    try:
        status, payload = _post_json(
            args.host, args.port, path, args.timeout
        )
    except (OSError, ValueError, http.client.HTTPException) as exc:
        print(
            f"error: cannot capture from {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    if status != 200:
        detail = (
            payload.get("error", "")
            if isinstance(payload, dict)
            else ""
        )
        print(
            f"error: trace capture failed: HTTP {status} {detail}",
            file=sys.stderr,
        )
        return 1
    problems = validate_chrome_trace(payload)
    if problems:
        for problem in problems[:10]:
            print(f"error: invalid trace: {problem}", file=sys.stderr)
        return 1
    events = payload.get("traceEvents", [])
    spans = [e for e in events if e.get("ph") == "X"]
    processes = {e.get("pid") for e in spans}
    links = cross_process_links(payload)
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )
    print(
        f"wrote {args.output}: {len(spans)} spans across "
        f"{len(processes)} process(es), {len(links)} cross-process "
        "parent/child link(s) — load in chrome://tracing or Perfetto"
    )
    if len(links) < args.min_cross_links:
        print(
            f"error: expected >= {args.min_cross_links} cross-process "
            f"link(s), found {len(links)} — was the capture window "
            "empty, or tracing sampled out? (try replaying with "
            "traced requests first)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """``analyze``: one workload-analytics report from ``/stats``."""
    import http.client

    from repro.serve.analyze import render_analysis
    from repro.serve.top import fetch_json

    try:
        status, stats = fetch_json(
            args.host, args.port, "/stats", timeout=args.timeout
        )
    except (OSError, ValueError, http.client.HTTPException) as exc:
        print(
            f"error: cannot reach {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    if status != 200:
        print(
            f"error: /stats returned HTTP {status}", file=sys.stderr
        )
        return 1
    print(render_analysis(stats, top_n=args.top), end="")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.top import run_top

    return run_top(
        args.host,
        args.port,
        interval=args.interval,
        once=args.once,
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.core.serialize import describe_index

    _require_index_file(args.index)
    # Lazy for binary containers: reads the footer + JSON header (and,
    # for v4 CTL/CTLS, maps the two small tree-shape sections), never
    # the label arrays — `stats` on a multi-GB index stays instant.
    summary = describe_index(args.index)
    print(f"type:               {summary['type']}Index")
    print(f"vertices:           {summary['num_vertices']}")
    print(f"edges:              {summary['num_edges']}")
    print(f"tree nodes:         {summary['tree_nodes']}")
    print(f"height (h):         {summary['height']}")
    print(f"width (w):          {summary['width']}")
    print(f"label entries:      {summary['total_label_entries']}")
    print(f"size (32-bit model): {summary['size_bytes'] / 1e6:.2f} MB")
    print(f"file bytes:         {summary['file_bytes']}")
    print(f"format version:     v{summary['format_version']}")
    sections = summary.get("sections")
    if sections:
        rendered = "  ".join(
            f"{name}={size}" for name, size in sections.items()
        )
        print(f"section bytes:      {rendered}")
    info = summary.get("build_info")
    if info:
        print(
            "built:              "
            f"{info.get('algorithm', '?')} in "
            f"{info.get('build_seconds', float('nan')):.2f}s "
            f"at {info.get('built_at', '?')} "
            f"(sha {str(info.get('git_sha', '?'))[:12]})"
        )
        if "labels_per_second" in info:
            print(
                f"label throughput:   "
                f"{info['labels_per_second']:.0f} entries/s"
            )
        for phase, entry in (info.get("phases") or {}).items():
            print(
                f"  phase {phase:<13} {entry['seconds']:8.3f}s"
                f"  ({entry['count']} spans)"
            )
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    """``bench-report``: gate current BENCH_*.json against a baseline."""
    from repro.bench.regression import (
        DEFAULT_TOLERANCE,
        compare_directories,
        render_report,
    )

    current_dir = Path(args.current)
    baseline_dir = Path(args.baseline)
    if not baseline_dir.is_dir():
        print(
            f"error: baseline directory {baseline_dir} does not exist "
            "(run the benchmarks and copy the BENCH_*.json files there "
            "to establish one)",
            file=sys.stderr,
        )
        return 1
    if not list(current_dir.glob("BENCH_*.json")):
        print(
            f"error: no BENCH_*.json files in {current_dir} — run the "
            "benchmarks first (see docs/benchmarks.md)",
            file=sys.stderr,
        )
        return 1
    report = compare_directories(
        current_dir,
        baseline_dir,
        default_tolerance=(
            args.tolerance if args.tolerance is not None
            else DEFAULT_TOLERANCE
        ),
        portable_only=args.portable,
        suites=args.suite,
    )
    print(render_report(report, verbose=args.verbose))
    return 0 if report.ok else 1


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "road":
        graph = road_network(args.vertices, seed=args.seed)
    else:
        graph = power_grid_network(args.vertices, seed=args.seed)
    write_dimacs(graph, args.output, comment=f"synthetic {args.kind} network")
    print(f"wrote {graph!r} to {args.output}")
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="write a Chrome trace-event JSON file of the run",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics snapshot as JSON when done",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-spc`` argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-spc",
        description="Shortest path counting indexes for road networks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build an index from a graph file")
    p_build.add_argument("graph", help="input graph (.gr/.json/edge list)")
    p_build.add_argument("index", help="output index (JSON)")
    p_build.add_argument(
        "--algorithm", choices=sorted(_ALGORITHMS), default="ctls"
    )
    p_build.add_argument(
        "--strategy",
        choices=("basic", "pruned", "cutsearch"),
        default="cutsearch",
        help="CTLS construction variant (ignored for tl/ctl)",
    )
    p_build.add_argument(
        "--format",
        choices=("json", "binary", "binary-v3", "binary-v2"),
        default="json",
        help="on-disk index format: inspectable JSON (v1, default) or "
        "packed binary (v4: checksummed, page-aligned sections loaded "
        "zero-copy via mmap; binary-v3/-v2 write the older containers "
        "for downgrades)",
    )
    p_build.add_argument(
        "--progress",
        action="store_true",
        help="print live per-node progress and a per-phase time/memory "
        "breakdown (partition, labels, SPC-graph, packing, serialize)",
    )
    _add_obs_flags(p_build)
    p_build.set_defaults(func=_cmd_build)

    p_query = sub.add_parser(
        "query", help="answer one Q(s, t) or a batch from a file"
    )
    p_query.add_argument("index")
    p_query.add_argument("source", type=int, nargs="?", default=None)
    p_query.add_argument("target", type=int, nargs="?", default=None)
    p_query.add_argument(
        "--pairs",
        metavar="FILE",
        default=None,
        help="batch mode: answer every 'source target' line of FILE "
        "through query_batch (one output line per pair)",
    )
    p_query.add_argument(
        "--explain",
        action="store_true",
        help="also print per-query counters (labels scanned, LCA node "
        "depth/width) — the offline twin of the server's explain mode",
    )
    _add_obs_flags(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_profile = sub.add_parser(
        "profile",
        help="replay a query workload and print latency percentiles",
    )
    p_profile.add_argument("index")
    p_profile.add_argument(
        "pairs", help="workload file: one 'source target' pair per line"
    )
    p_profile.add_argument(
        "--repeats", type=int, default=1,
        help="replay the whole workload this many times (default 1)",
    )
    p_profile.add_argument(
        "--batch", type=int, default=0, metavar="N",
        help="replay through query_batch in chunks of N "
        "(default 0: per-pair queries)",
    )
    p_profile.add_argument(
        "--flame", metavar="OUT.txt", default=None,
        help="attach the sampling profiler during the replay and write "
        "collapsed flamegraph stacks to OUT.txt",
    )
    _add_obs_flags(p_profile)
    p_profile.set_defaults(func=_cmd_profile)

    p_serve = sub.add_parser(
        "serve",
        help="serve Q(s, t) over HTTP with micro-batching "
        "(see docs/serving.md)",
    )
    p_serve.add_argument("index", help="built index file to serve")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8355,
        help="TCP port (0 picks a free one; default 8355)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run a fleet: N worker processes mmap the same index "
        "behind a consistent-hash router on this port (default 1 = "
        "single in-process server)",
    )
    p_serve.add_argument(
        "--no-coalesce", action="store_true",
        help="answer each request with its own scan (baseline mode)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="coalescer window size limit (default 64)",
    )
    p_serve.add_argument(
        "--max-wait-us", type=int, default=1000, metavar="US",
        help="coalescer backstop timer in microseconds (default 1000)",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=4096, metavar="N",
        help="LRU result-cache capacity, 0 disables (default 4096)",
    )
    p_serve.add_argument(
        "--high-water", type=int, default=256, metavar="N",
        help="shed new requests (503) past this queue depth "
        "(default 256)",
    )
    p_serve.add_argument(
        "--timeout-ms", type=int, default=1000, metavar="MS",
        help="per-request deadline; losers get 504 (default 1000)",
    )
    p_serve.add_argument(
        "--access-log", metavar="FILE", default=None,
        help="write JSON-lines access + slow-query records to FILE "
        "('-' = stderr; default: no request logging)",
    )
    p_serve.add_argument(
        "--slow-ms", type=float, default=100.0, metavar="MS",
        help="latency threshold for slow_query records (default 100)",
    )
    p_serve.add_argument(
        "--log-sample", type=int, default=1, metavar="N",
        help="keep 1 in N access records for fast 200s; slow and "
        "failed requests are always logged (default 1 = everything)",
    )
    p_serve.add_argument(
        "--log-seed", type=int, default=0,
        help="seed of the deterministic log sampler (default 0)",
    )
    p_serve.add_argument(
        "--slo-window", type=int, default=30, metavar="S",
        help="rolling SLO window in seconds, 0 disables (default 30)",
    )
    p_serve.add_argument(
        "--slo-p99-ms", type=float, default=0.0, metavar="MS",
        help="degrade /health when windowed p99 latency exceeds this "
        "(default 0 = objective disabled)",
    )
    p_serve.add_argument(
        "--slo-error-rate", type=float, default=0.0, metavar="FRAC",
        help="degrade /health when windowed error rate exceeds this "
        "fraction (default 0 = objective disabled)",
    )
    p_serve.add_argument(
        "--fault-plan", metavar="SPEC", default=None,
        help="chaos injection plan, e.g. 'scan.fail:0.1,conn.reset:0.05' "
        "(sites: scan.fail scan.slow flush.fail conn.reset index.load "
        "worker.kill wal.torn_write; falls back to $REPRO_FAULT_PLAN "
        "when omitted)",
    )
    p_serve.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the deterministic fault RNG (default 0)",
    )
    p_serve.add_argument(
        "--fallback", choices=("none", "online"), default="none",
        help="degraded-mode answer path while the circuit breaker is "
        "open: 'online' runs counting Dijkstra on --graph (default "
        "none)",
    )
    p_serve.add_argument(
        "--graph", metavar="FILE", default=None,
        help="graph file backing '--fallback online' and/or "
        "'--live-updates'",
    )
    p_serve.add_argument(
        "--live-updates", action="store_true",
        help="accept streamed edge-weight deltas on POST /admin/update "
        "(CTL indexes only; needs --graph; see docs/serving.md)",
    )
    p_serve.add_argument(
        "--wal-dir", metavar="DIR", default=None,
        help="durable write-ahead log for accepted update batches: "
        "fsync'd before acknowledgement, replayed on restart/respawn "
        "to the exact pre-crash overlay (needs --live-updates; a "
        "fleet gives each worker DIR/worker-<id>/)",
    )
    p_serve.add_argument(
        "--respawn", action="store_true",
        help="fleet only: respawn dead workers with capped-exponential "
        "backoff and a flap circuit instead of leaving them ejected",
    )
    p_serve.add_argument(
        "--probe-interval-s", type=float, default=1.0, metavar="S",
        help="fleet only: seconds between supervisor liveness probes "
        "of each worker; 0 disables proactive probing (default 1)",
    )
    p_serve.add_argument(
        "--overlay-threshold", type=int, default=20000, metavar="N",
        help="patched overlay entries that trigger a background "
        "rebuild-and-swap of the base index, 0 = never (default 20000)",
    )
    p_serve.add_argument(
        "--update-freshness-s", type=float, default=0.0, metavar="S",
        help="seconds an in-flight repair may lag before affected "
        "queries fall back to counting Dijkstra on current weights "
        "(default 0 = disabled)",
    )
    p_serve.add_argument(
        "--trace-buffer", type=int, default=4096, metavar="N",
        help="per-process distributed-trace span ring capacity; 0 "
        "disables tracing and POST /admin/trace (default 4096)",
    )
    p_serve.add_argument(
        "--trace-sample", type=int, default=64, metavar="N",
        help="locally trace 1 in N requests without an inbound "
        "traceparent (1 = everything, 0 = only propagated traces; "
        "default 64)",
    )
    p_serve.add_argument(
        "--top-pairs", type=int, default=256, metavar="N",
        help="Space-Saving heavy-hitter sketch capacity over query "
        "pairs (the /stats top_pairs block); 0 disables (default 256)",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=10, metavar="N",
        help="trip the scan circuit breaker after N consecutive "
        "failures, 0 disables (default 10)",
    )
    p_serve.add_argument(
        "--breaker-cooldown", type=float, default=5.0, metavar="S",
        help="seconds between index probes while the breaker is open "
        "(default 5)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_verify = sub.add_parser(
        "verify-index",
        help="validate an index file's checksums (and optionally "
        "cross-check sampled queries against the online baseline)",
    )
    p_verify.add_argument("index", help="index file to verify")
    p_verify.add_argument(
        "--graph", metavar="FILE", default=None,
        help="also cross-check sampled queries against counting "
        "Dijkstra on this graph",
    )
    p_verify.add_argument(
        "--samples", type=int, default=50, metavar="N",
        help="number of sampled query pairs to cross-check (default 50)",
    )
    p_verify.add_argument(
        "--seed", type=int, default=0,
        help="seed of the query sampler (default 0)",
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running server's "
        "/stats + /metrics",
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument(
        "--port", type=int, default=8355,
        help="port of the server to watch (default 8355)",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="refresh interval in seconds (default 2)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="print one frame and exit (for scripts and CI)",
    )
    p_top.set_defaults(func=_cmd_top)

    p_trace = sub.add_parser(
        "trace",
        help="capture a distributed trace from a running server or "
        "fleet (POST /admin/trace) and write a Chrome trace file",
    )
    p_trace.add_argument(
        "output", help="output Chrome trace JSON file"
    )
    p_trace.add_argument("--host", default="127.0.0.1")
    p_trace.add_argument(
        "--port", type=int, default=8355,
        help="server or fleet router port (default 8355)",
    )
    p_trace.add_argument(
        "--clear", action="store_true",
        help="drain the span rings as part of the capture, so the "
        "next capture starts empty",
    )
    p_trace.add_argument(
        "--min-cross-links", type=int, default=0, metavar="N",
        help="exit 1 unless the merged trace contains at least N "
        "cross-process parent/child span links (default 0 = no "
        "assertion; CI uses 1 against a fleet)",
    )
    p_trace.add_argument(
        "--timeout", type=float, default=10.0, metavar="S",
        help="HTTP timeout in seconds (default 10)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_analyze = sub.add_parser(
        "analyze",
        help="workload analytics report over a running server's "
        "/stats: hot pairs, skew, cache attribution, fleet freshness",
    )
    p_analyze.add_argument("--host", default="127.0.0.1")
    p_analyze.add_argument(
        "--port", type=int, default=8355,
        help="server or fleet router port (default 8355)",
    )
    p_analyze.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows in the hot-pair table (default 20)",
    )
    p_analyze.add_argument(
        "--timeout", type=float, default=10.0, metavar="S",
        help="HTTP timeout in seconds (default 10)",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_stats = sub.add_parser("stats", help="print index statistics")
    p_stats.add_argument("index")
    p_stats.set_defaults(func=_cmd_stats)

    p_bench = sub.add_parser(
        "bench-report",
        help="diff current BENCH_*.json files against a committed "
        "baseline and exit non-zero on regression",
    )
    p_bench.add_argument(
        "--current", metavar="DIR", default=".",
        help="directory holding the freshly emitted BENCH_*.json "
        "(default: current directory)",
    )
    p_bench.add_argument(
        "--baseline", metavar="DIR", default="benchmarks/baselines",
        help="committed baseline snapshot (default benchmarks/baselines)",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=None, metavar="X",
        help="default multiplicative tolerance for host-dependent "
        "metrics (default 1.75; per-unit/per-record values override)",
    )
    p_bench.add_argument(
        "--portable", action="store_true",
        help="compare only host-independent metrics (ratios, label "
        "counts, byte sizes) — the mode CI uses against a baseline "
        "recorded on different hardware",
    )
    p_bench.add_argument(
        "--suite", action="append", default=None, metavar="NAME",
        help="restrict to these suites (repeatable; default: every "
        "suite present in --current)",
    )
    p_bench.add_argument(
        "--verbose", action="store_true",
        help="also list metrics whose status is plain ok",
    )
    p_bench.set_defaults(func=_cmd_bench_report)

    p_generate = sub.add_parser(
        "generate", help="write a synthetic network as DIMACS"
    )
    p_generate.add_argument("kind", choices=("road", "power"))
    p_generate.add_argument("vertices", type=int)
    p_generate.add_argument("output")
    p_generate.add_argument("--seed", type=int, default=0)
    p_generate.set_defaults(func=_cmd_generate)

    p_replay = sub.add_parser(
        "update-replay",
        help="stream a timestamped delta file at a live server's "
        "POST /admin/update (see docs/operations.md)",
    )
    p_replay.add_argument(
        "deltas",
        help="JSON-lines delta file: {\"at\": seconds, "
        "\"updates\": [[a, b, weight], ...]} per line",
    )
    p_replay.add_argument("--host", default="127.0.0.1")
    p_replay.add_argument(
        "--port", type=int, default=8355,
        help="live server or fleet router port (default 8355)",
    )
    p_replay.add_argument(
        "--speed", type=float, default=1.0, metavar="X",
        help="timeline multiplier: 2.0 streams twice as fast, "
        "0 streams as fast as the server acknowledges (default 1.0)",
    )
    p_replay.add_argument(
        "--timeout", type=float, default=30.0, metavar="S",
        help="per-batch HTTP timeout in seconds (default 30)",
    )
    p_replay.set_defaults(func=_cmd_update_replay)

    p_wal = sub.add_parser(
        "wal-verify",
        help="validate a live-update write-ahead log: per-record CRCs, "
        "epoch/seqno continuity, watermark range (see "
        "docs/operations.md)",
    )
    p_wal.add_argument(
        "path",
        help="a wal-NNNNNN.log file, or a WAL directory (every epoch "
        "file in it is checked; a fleet's workers each own "
        "DIR/worker-<id>/)",
    )
    p_wal.set_defaults(func=_cmd_wal_verify)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

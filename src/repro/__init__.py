"""repro — shortest path counting on road networks.

A complete reproduction of *"Accelerating Shortest Path Counting on Road
Networks"* (ICDE 2025): the CTL-Index and CTLS-Index, the TL-Index
baseline they improve on, and every substrate they stand on (balanced
vertex cuts via max-flow, tree decomposition, count-preserving
SPC-Graphs, hub labels).

Quickstart::

    from repro import CTLSIndex, road_network

    graph = road_network(2000, seed=7)
    index = CTLSIndex.build(graph)
    distance, count = index.query(0, 1234)

All indexes answer exact queries: ``distance`` is the shortest path
distance and ``count`` the number of distinct shortest paths.
"""

import repro.obs as obs
from repro.baselines import OnlineSPC, TLIndex
from repro.core import (
    CTLIndex,
    CTLSIndex,
    DynamicCTL,
    DynamicCTLS,
    SPCIndex,
    load_index,
    save_index,
)
from repro.exceptions import ReproError
from repro.graph import Graph
from repro.graph.generators import (
    grid_road_network,
    power_grid_network,
    random_geometric_network,
    road_network,
)
from repro.graph.io import read_dimacs, read_edge_list, read_json
from repro.search import spc_query
from repro.types import INF, QueryResult, QueryStats

__version__ = "1.0.0"

__all__ = [
    "CTLIndex",
    "CTLSIndex",
    "DynamicCTL",
    "DynamicCTLS",
    "Graph",
    "INF",
    "OnlineSPC",
    "QueryResult",
    "QueryStats",
    "ReproError",
    "SPCIndex",
    "TLIndex",
    "grid_road_network",
    "load_index",
    "obs",
    "power_grid_network",
    "random_geometric_network",
    "read_dimacs",
    "read_edge_list",
    "read_json",
    "road_network",
    "save_index",
    "spc_query",
    "__version__",
]

"""Index-free baseline: counting Dijkstra per query.

The "straightforward solution" of the paper's introduction — a modified
Dijkstra tracking path counts — wrapped in the common
:class:`~repro.core.base.SPCIndex` interface so benchmarks can include
it.  No preprocessing; every query runs SSSPC until the target settles.
"""

from __future__ import annotations

import time

from repro.core.base import BuildStats, IndexStats, SPCIndex
from repro.exceptions import IndexQueryError, VertexNotFoundError
from repro.graph.graph import Graph
from repro.search.dijkstra import ssspc
from repro.types import INF, QueryResult, Vertex


class OnlineSPC(SPCIndex):
    """Zero-preprocessing baseline answering queries with SSSPC runs."""

    name = "Dijkstra"

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.build_stats = BuildStats()

    @classmethod
    def build(cls, graph: Graph) -> "OnlineSPC":
        """No-op construction retained for interface symmetry."""
        started = time.perf_counter()
        instance = cls(graph)
        instance.build_stats.seconds = time.perf_counter() - started
        return instance

    def _query_scan(self, source: Vertex, target: Vertex):
        """Run a target-stopping counting Dijkstra.

        ``visited_labels`` reports settled vertices.
        """
        try:
            if not self.graph.has_vertex(target):
                raise VertexNotFoundError(target)
            if source == target:
                if not self.graph.has_vertex(source):
                    raise VertexNotFoundError(source)
                return QueryResult(0, 1), 0
            dist, count = ssspc(self.graph, source, target=target)
        except VertexNotFoundError as exc:
            raise IndexQueryError(str(exc)) from exc
        if target not in dist:
            return QueryResult(INF, 0), len(dist)
        return QueryResult(dist[target], count[target]), len(dist)

    def stats(self) -> IndexStats:
        """Zero-size stats: this baseline stores no index."""
        return IndexStats(
            num_vertices=self.graph.num_vertices,
            num_edges=self.graph.num_edges,
            tree_nodes=0,
            height=0,
            width=0,
            total_label_entries=0,
            size_bytes=0,
        )

"""Tree decomposition by minimum-degree elimination (paper §II-B).

The TL-Index derives its hierarchy from a tree decomposition computed by
iteratively eliminating the minimum-degree vertex [Koster et al. 2001].
Eliminating ``v`` records its *bag* ``X(v) = {v} ∪ N(v)`` and contracts
the graph: every pair of ``v``'s neighbours is connected by a shortcut
whose distance is the two-hop distance through ``v`` and whose count
weight multiplies the two edges' counts — the same count-preserving
merge as SPC-Graph construction, so shortest distances *and counts*
among remaining vertices are invariant throughout the elimination.

The tree has one node per vertex; the parent of ``X(v)`` is ``X(u)``
where ``u`` is the neighbour of ``v`` eliminated first after ``v``.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Dict, List, Tuple

from repro.graph.graph import Graph
from repro.graph.spc_graph import add_shortcut
from repro.types import Vertex, Weight


@dataclass
class TreeDecomposition:
    """Result of the elimination: bags, order, and the vertex tree."""

    #: Vertices in elimination order (first eliminated first).
    order: List[Vertex]
    #: ``order_of[v]`` — position of ``v`` in the elimination order.
    order_of: Dict[Vertex, int]
    #: ``bags[v]`` — neighbours of ``v`` at elimination time, as
    #: ``(u, distance, count)`` triples; all are eliminated after ``v``.
    bags: Dict[Vertex, List[Tuple[Vertex, Weight, int]]]
    #: ``parent[v]`` — tree parent vertex, or ``None`` for roots.
    parent: Dict[Vertex, "Vertex | None"]
    #: ``depth[v]`` — root has depth 0.
    depth: Dict[Vertex, int]

    @property
    def height(self) -> int:
        """Tree height ``h``: maximum number of ancestors incl. self."""
        return max(self.depth.values(), default=-1) + 1

    @property
    def width(self) -> int:
        """Tree width ``w``: maximum bag size (incl. the bag owner)."""
        return max((len(bag) + 1 for bag in self.bags.values()), default=0)

    def children(self) -> Dict[Vertex, List[Vertex]]:
        """``{v: [children]}`` adjacency of the vertex tree."""
        result: Dict[Vertex, List[Vertex]] = {v: [] for v in self.parent}
        for v, p in self.parent.items():
            if p is not None:
                result[p].append(v)
        return result


def minimum_degree_elimination(graph: Graph) -> TreeDecomposition:
    """Eliminate vertices smallest-degree-first with SPC contraction.

    Disconnected graphs yield one natural root per component; secondary
    roots are re-parented under the first root so downstream consumers
    see a single tree (labels across components stay infinite).
    """
    work = graph.copy()
    heap: List[Tuple[int, Vertex]] = [
        (work.degree(v), v) for v in work.vertices()
    ]
    heapify(heap)

    order: List[Vertex] = []
    order_of: Dict[Vertex, int] = {}
    bags: Dict[Vertex, List[Tuple[Vertex, Weight, int]]] = {}
    remaining = work.num_vertices

    while remaining:
        degree, v = heappop(heap)
        if not work.has_vertex(v) or work.degree(v) != degree:
            continue  # stale heap entry
        neighbours = [(u, w, c) for u, (w, c) in sorted(work.adj(v).items())]
        bags[v] = neighbours
        order_of[v] = len(order)
        order.append(v)
        work.remove_vertex(v)
        remaining -= 1

        for i, (u, w_u, c_u) in enumerate(neighbours):
            for u2, w_u2, c_u2 in neighbours[i + 1:]:
                add_shortcut(work, u, u2, w_u + w_u2, c_u * c_u2)
            heappush(heap, (work.degree(u), u))

    # Parent: the first-eliminated bag neighbour.
    parent: Dict[Vertex, "Vertex | None"] = {}
    roots: List[Vertex] = []
    for v in order:
        bag = bags[v]
        if bag:
            parent[v] = min((u for u, _w, _c in bag), key=order_of.__getitem__)
        else:
            parent[v] = None
            roots.append(v)
    # Single tree: chain secondary roots under the first.
    if len(roots) > 1:
        primary = roots[-1]  # last eliminated = natural global root
        for r in roots:
            if r != primary:
                parent[r] = primary

    depth: Dict[Vertex, int] = {}
    for v in reversed(order):  # parents are always eliminated later
        p = parent[v]
        depth[v] = 0 if p is None else depth[p] + 1

    return TreeDecomposition(
        order=order, order_of=order_of, bags=bags, parent=parent, depth=depth
    )

"""TL-Index: the state-of-the-art baseline (Qiu et al., VLDB 2022).

The TL-Index combines hub labeling with a tree decomposition hierarchy
(paper §II-B).  Each graph vertex owns one tree node; vertex rank is
tree depth (shallower = higher).  Labels store the convex shortest
distance and count from every vertex to each of its tree ancestors,
computed with the *upward framework*: processing vertices root-down,
the labels of ``v`` follow from its bag neighbours' labels —

``csd(v, a) = min over (u, phi, sigma) in bag(v) of phi + csd(u, a)``

with counts multiplied by the bag edge's count weight and summed over
minimising neighbours.  Bag edges are count-preserving contractions, so
every convex shortest path is counted exactly once at its first hop
above ``v``.

TL-Query scans all common ancestors — label positions ``0 .. depth of
the LCA`` — hence ``O(h)`` visits that *shrink* as query distance grows
(shallower LCAs), the behaviour Exp-3 contrasts with CTLS-Query.  The
labels live in the same packed :class:`~repro.labels.LabelArena` as the
CTL/CTLS indexes (dense id = position in the elimination order); the
original dict-of-lists layout remains available as the ``"dict"`` query
engine and for JSON serialization.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import repro.obs as obs
from repro.baselines.tree_decomposition import (
    TreeDecomposition,
    minimum_degree_elimination,
)
from repro.core.base import (
    SELF_QUERY_RESULT,
    BuildStats,
    IndexStats,
    SPCIndex,
)
from repro.exceptions import IndexQueryError, SerializationError
from repro.graph.graph import Graph
from repro.labels.arena import LabelArena, record_layout_gauges
from repro.tree.lca import LCATable
from repro.types import INF, QueryResult, Vertex


class TLIndex(SPCIndex):
    """Tree-decomposition hub-labeling index for shortest path counting."""

    name = "TL"

    def __init__(
        self,
        decomposition: TreeDecomposition,
        dist: Optional[Dict[Vertex, List]],
        count: Optional[Dict[Vertex, List[int]]],
        lca: LCATable,
        vertex_ids: Dict[Vertex, int],
        build_stats: BuildStats,
        num_edges: int,
        *,
        arena: Optional[LabelArena] = None,
    ) -> None:
        self.decomposition = decomposition
        if arena is not None:
            self.arena = arena
        elif dist is not None and count is not None:
            self.arena = LabelArena.from_lists(
                decomposition.order, dist, count
            )
        else:
            raise SerializationError(
                "TLIndex needs either label dicts or a packed arena"
            )
        self._label_dist = dist
        self._label_count = count
        self._lca = lca
        self._vertex_ids = vertex_ids
        self.build_stats = build_stats
        self._num_edges = num_edges
        self._depth_by_id = [decomposition.depth[v] for v in decomposition.order]
        #: Query implementation: ``"arena"`` (packed, default) or
        #: ``"dict"`` (reference); identical answers.
        self.query_engine = "arena"

    @property
    def label_dist(self) -> Dict[Vertex, List]:
        """Per-vertex distance lists (rebuilt on demand after load)."""
        if self._label_dist is None:
            self._label_dist, self._label_count = self.arena.to_lists()
        return self._label_dist

    @property
    def label_count(self) -> Dict[Vertex, List[int]]:
        """Per-vertex count lists (rebuilt on demand after load)."""
        if self._label_count is None:
            self._label_dist, self._label_count = self.arena.to_lists()
        return self._label_count

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph) -> "TLIndex":
        """Run TL-Construct: tree decomposition + upward label DP."""
        started = time.perf_counter()
        rec = obs.build_scope()
        with rec.span("tl.build", n=graph.num_vertices, m=graph.num_edges):
            with rec.span("tl.build.decomposition"):
                td = minimum_degree_elimination(graph)

            # Upward framework: parents (eliminated later) before children.
            dist: Dict[Vertex, List] = {}
            count: Dict[Vertex, List[int]] = {}
            with rec.span("tl.build.labels"):
                for v in reversed(td.order):
                    depth_v = td.depth[v]
                    dv: List = [INF] * (depth_v + 1)
                    cv: List[int] = [0] * (depth_v + 1)
                    dv[depth_v] = 0
                    cv[depth_v] = 1
                    for u, phi, sigma in td.bags[v]:
                        du = dist[u]
                        cu = count[u]
                        for i in range(len(du)):
                            base = du[i]
                            if base is INF or base == INF:
                                continue
                            cand = phi + base
                            if cand < dv[i]:
                                dv[i] = cand
                                cv[i] = sigma * cu[i]
                            elif cand == dv[i]:
                                cv[i] += sigma * cu[i]
                    dist[v] = dv
                    count[v] = cv
                    rec.incr("build.label_entries", depth_v + 1)

            # O(1) LCA over the vertex tree.
            with rec.span("tl.build.lca"):
                vertex_ids = {v: i for i, v in enumerate(td.order)}
                parents = [
                    -1 if td.parent[v] is None else vertex_ids[td.parent[v]]
                    for v in td.order
                ]
                lca = LCATable(parents)

        rec.gauge_max("build.peak_edges", graph.num_edges)
        index = cls(
            td, dist, count, lca, vertex_ids, BuildStats(), graph.num_edges
        )
        record_layout_gauges(rec, index.arena)
        index.build_stats = BuildStats.from_recorder(
            rec, seconds=time.perf_counter() - started, arena=index.arena
        )
        return index

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _lca_depth(self, source: Vertex, target: Vertex):
        try:
            a = self._vertex_ids[source]
            b = self._vertex_ids[target]
        except KeyError:
            return None
        return self._depth_by_id[self._lca.lca(a, b)]

    def _query_scan(self, source: Vertex, target: Vertex):
        """TL-Query: scan labels of all common ancestors (Eq. 1)."""
        if self.query_engine == "dict":
            return self._query_scan_dict(source, target)
        try:
            a = self._vertex_ids[source]
            b = self._vertex_ids[target]
        except KeyError as exc:
            raise IndexQueryError(f"vertex {exc.args[0]} is not indexed") from exc
        if source == target:
            return SELF_QUERY_RESULT, 0
        prefix = self._depth_by_id[self._lca.lca(a, b)] + 1
        distance, count = self.arena.scan(a, b, 0, prefix)
        return QueryResult(distance, count), prefix

    def _query_scan_dict(self, source: Vertex, target: Vertex):
        """Reference scan over the dict-of-lists label layout."""
        if source == target:
            if source not in self._vertex_ids:
                raise IndexQueryError(f"vertex {source} is not indexed")
            return QueryResult(0, 1), 0
        try:
            a = self._vertex_ids[source]
            b = self._vertex_ids[target]
        except KeyError as exc:
            raise IndexQueryError(f"vertex {exc.args[0]} is not indexed") from exc
        prefix = self._depth_by_id[self._lca.lca(a, b)] + 1

        best = INF
        total = 0
        for d_s, d_t, c_s, c_t in zip(
            self.label_dist[source][:prefix],
            self.label_dist[target][:prefix],
            self.label_count[source][:prefix],
            self.label_count[target][:prefix],
        ):
            d = d_s + d_t
            if d < best:
                best = d
                total = c_s * c_t
            elif d == best:
                total += c_s * c_t
        if total == 0:
            return QueryResult(INF, 0), prefix
        return QueryResult(best, total), prefix

    def query_batch(self, pairs):
        """TL-Query over many pairs via one batched arena scan.

        Phase 1 resolves ids and ancestor prefixes for every pair in a
        single tight loop; phase 2 hands all scan windows to
        :meth:`LabelArena.scan_batch`, which merges them in one
        vectorised pass when numpy is available.
        """
        if self.query_engine == "dict":
            return super().query_batch(pairs)
        enabled = obs.ENABLED
        started = time.perf_counter() if enabled else 0.0
        ids = self._vertex_ids
        offsets = self.arena.offsets
        depth_by_id = self._depth_by_id
        lca = self._lca.lca
        results: List[Optional[QueryResult]] = []
        append = results.append
        starts_a: List[int] = []
        starts_b: List[int] = []
        lengths: List[int] = []
        slots: List[int] = []
        visited = 0
        for s, t in pairs:
            try:
                a = ids[s]
                b = ids[t]
            except KeyError as exc:
                raise IndexQueryError(
                    f"vertex {exc.args[0]} is not indexed"
                ) from exc
            if s == t:
                append(SELF_QUERY_RESULT)
                continue
            prefix = depth_by_id[lca(a, b)] + 1
            starts_a.append(offsets[a])
            starts_b.append(offsets[b])
            lengths.append(prefix)
            slots.append(len(results))
            visited += prefix
            append(None)
        for slot, scanned in zip(
            slots, self.arena.scan_batch(starts_a, starts_b, lengths)
        ):
            results[slot] = QueryResult(*scanned)
        if enabled:
            self._record_batch(
                time.perf_counter() - started, len(results), visited
            )
        return results

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> IndexStats:
        """Static index shape (32-bit label-entry size model)."""
        total_entries = self.arena.total_entries
        return IndexStats(
            num_vertices=self.arena.num_vertices,
            num_edges=self._num_edges,
            tree_nodes=self.arena.num_vertices,
            height=self.decomposition.height,
            width=self.decomposition.width,
            total_label_entries=total_entries,
            size_bytes=8 * total_entries,
        )

"""TL-Index: the state-of-the-art baseline (Qiu et al., VLDB 2022).

The TL-Index combines hub labeling with a tree decomposition hierarchy
(paper §II-B).  Each graph vertex owns one tree node; vertex rank is
tree depth (shallower = higher).  Labels store the convex shortest
distance and count from every vertex to each of its tree ancestors,
computed with the *upward framework*: processing vertices root-down,
the labels of ``v`` follow from its bag neighbours' labels —

``csd(v, a) = min over (u, phi, sigma) in bag(v) of phi + csd(u, a)``

with counts multiplied by the bag edge's count weight and summed over
minimising neighbours.  Bag edges are count-preserving contractions, so
every convex shortest path is counted exactly once at its first hop
above ``v``.

TL-Query scans all common ancestors — label positions ``0 .. depth of
the LCA`` — hence ``O(h)`` visits that *shrink* as query distance grows
(shallower LCAs), the behaviour Exp-3 contrasts with CTLS-Query.
"""

from __future__ import annotations

import time
from typing import Dict, List

import repro.obs as obs
from repro.baselines.tree_decomposition import (
    TreeDecomposition,
    minimum_degree_elimination,
)
from repro.core.base import BuildStats, IndexStats, SPCIndex
from repro.exceptions import IndexQueryError
from repro.graph.graph import Graph
from repro.tree.lca import LCATable
from repro.types import INF, QueryResult, Vertex


class TLIndex(SPCIndex):
    """Tree-decomposition hub-labeling index for shortest path counting."""

    name = "TL"

    def __init__(
        self,
        decomposition: TreeDecomposition,
        dist: Dict[Vertex, List],
        count: Dict[Vertex, List[int]],
        lca: LCATable,
        vertex_ids: Dict[Vertex, int],
        build_stats: BuildStats,
        num_edges: int,
    ) -> None:
        self.decomposition = decomposition
        self.label_dist = dist
        self.label_count = count
        self._lca = lca
        self._vertex_ids = vertex_ids
        self.build_stats = build_stats
        self._num_edges = num_edges
        self._depth_by_id = [decomposition.depth[v] for v in decomposition.order]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph) -> "TLIndex":
        """Run TL-Construct: tree decomposition + upward label DP."""
        started = time.perf_counter()
        rec = obs.build_scope()
        with rec.span("tl.build", n=graph.num_vertices, m=graph.num_edges):
            with rec.span("tl.build.decomposition"):
                td = minimum_degree_elimination(graph)

            # Upward framework: parents (eliminated later) before children.
            dist: Dict[Vertex, List] = {}
            count: Dict[Vertex, List[int]] = {}
            with rec.span("tl.build.labels"):
                for v in reversed(td.order):
                    depth_v = td.depth[v]
                    dv: List = [INF] * (depth_v + 1)
                    cv: List[int] = [0] * (depth_v + 1)
                    dv[depth_v] = 0
                    cv[depth_v] = 1
                    for u, phi, sigma in td.bags[v]:
                        du = dist[u]
                        cu = count[u]
                        for i in range(len(du)):
                            base = du[i]
                            if base is INF or base == INF:
                                continue
                            cand = phi + base
                            if cand < dv[i]:
                                dv[i] = cand
                                cv[i] = sigma * cu[i]
                            elif cand == dv[i]:
                                cv[i] += sigma * cu[i]
                    dist[v] = dv
                    count[v] = cv
                    rec.incr("build.label_entries", depth_v + 1)

            # O(1) LCA over the vertex tree.
            with rec.span("tl.build.lca"):
                vertex_ids = {v: i for i, v in enumerate(td.order)}
                parents = [
                    -1 if td.parent[v] is None else vertex_ids[td.parent[v]]
                    for v in td.order
                ]
                lca = LCATable(parents)

        total_entries = sum(len(x) for x in dist.values())
        rec.gauge_max("build.peak_edges", graph.num_edges)
        stats = BuildStats.from_recorder(
            rec,
            seconds=time.perf_counter() - started,
            total_label_entries=total_entries,
        )
        return cls(td, dist, count, lca, vertex_ids, stats, graph.num_edges)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _lca_depth(self, source: Vertex, target: Vertex):
        try:
            a = self._vertex_ids[source]
            b = self._vertex_ids[target]
        except KeyError:
            return None
        return self._depth_by_id[self._lca.lca(a, b)]

    def _query_scan(self, source: Vertex, target: Vertex):
        """TL-Query: scan labels of all common ancestors (Eq. 1)."""
        if source == target:
            if source not in self.label_dist:
                raise IndexQueryError(f"vertex {source} is not indexed")
            return QueryResult(0, 1), 0
        try:
            a = self._vertex_ids[source]
            b = self._vertex_ids[target]
        except KeyError as exc:
            raise IndexQueryError(f"vertex {exc.args[0]} is not indexed") from exc
        prefix = self._depth_by_id[self._lca.lca(a, b)] + 1

        best = INF
        total = 0
        for d_s, d_t, c_s, c_t in zip(
            self.label_dist[source][:prefix],
            self.label_dist[target][:prefix],
            self.label_count[source][:prefix],
            self.label_count[target][:prefix],
        ):
            d = d_s + d_t
            if d < best:
                best = d
                total = c_s * c_t
            elif d == best:
                total += c_s * c_t
        if total == 0:
            return QueryResult(INF, 0), prefix
        return QueryResult(best, total), prefix

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> IndexStats:
        """Static index shape (32-bit label-entry size model)."""
        total_entries = sum(len(x) for x in self.label_dist.values())
        return IndexStats(
            num_vertices=len(self.label_dist),
            num_edges=self._num_edges,
            tree_nodes=len(self.label_dist),
            height=self.decomposition.height,
            width=self.decomposition.width,
            total_label_entries=total_entries,
            size_bytes=8 * total_entries,
        )

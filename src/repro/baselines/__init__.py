"""Baseline algorithms: TL-Index (state of the art) and online Dijkstra."""

from repro.baselines.online import OnlineSPC
from repro.baselines.tl import TLIndex
from repro.baselines.tree_decomposition import (
    TreeDecomposition,
    minimum_degree_elimination,
)

__all__ = [
    "OnlineSPC",
    "TLIndex",
    "TreeDecomposition",
    "minimum_degree_elimination",
]

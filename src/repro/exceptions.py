"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph structure or an operation on a malformed graph."""


class VertexNotFoundError(GraphError):
    """A vertex id referenced by the caller does not exist in the graph."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeError(GraphError):
    """Invalid edge: self-loop, non-positive weight, or missing endpoint."""


class DisconnectedError(ReproError):
    """Two query vertices lie in different connected components."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(
            f"vertices {source} and {target} are not connected; "
            "no shortest path exists"
        )
        self.source = source
        self.target = target


class IndexBuildError(ReproError):
    """Index construction failed (degenerate cut, invariant violation...)."""


class IndexQueryError(ReproError):
    """A query was issued against an index in an invalid way."""


class SerializationError(ReproError):
    """Saving or loading an index failed."""


class IndexCorruptError(SerializationError):
    """An on-disk index failed integrity validation.

    Raised by :func:`repro.core.serialize.load_index` when a file is
    truncated, bit-flipped, or structurally impossible.  ``section``
    names the part of the container that failed (``"header"``,
    ``"vertices"``, ``"offsets"``, ``"dist"``, ``"count"``,
    ``"footer"``, or ``"file"`` for whole-file size mismatches);
    ``expected``/``actual`` carry byte counts or checksums when the
    failure is quantifiable.
    """

    def __init__(
        self,
        path,
        section: str,
        message: str,
        *,
        expected=None,
        actual=None,
    ) -> None:
        detail = f"{path}: corrupt index ({section}): {message}"
        if expected is not None or actual is not None:
            detail += f" (expected {expected}, got {actual})"
        super().__init__(detail)
        self.path = str(path)
        self.section = section
        self.expected = expected
        self.actual = actual


class ParseError(ReproError):
    """A graph file could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class WorkloadError(ReproError):
    """A benchmark workload could not be generated as requested."""


class LiveUpdateError(ReproError):
    """A live-update batch or delta stream could not be applied.

    Raised by :mod:`repro.live` for malformed delta payloads, updates
    against a server without live mode, or an index/graph pairing that
    cannot absorb streamed weight deltas (only CTL indexes can — CTLS
    shortest-path cuts are weight-dependent, so CTLS repairs by
    rebuild via :class:`repro.core.dynamic.DynamicCTLS`).
    """

"""A compact directed flow network for Dinitz' algorithm.

Nodes are arbitrary hashable objects (the vertex-cut reduction uses
``(v, "in")`` / ``(v, "out")`` pairs and sentinel super-terminals).
Edges are stored in flat parallel lists with paired residual arcs, the
standard adjacency-list max-flow layout.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

Node = Hashable


class FlowNetwork:
    """Directed network with integer capacities and residual arcs."""

    def __init__(self) -> None:
        self._index: Dict[Node, int] = {}
        self.adjacency: List[List[int]] = []
        self.to: List[int] = []
        self.capacity: List[int] = []

    def node_id(self, node: Node) -> int:
        """Dense integer id of ``node``, creating it on first use."""
        idx = self._index.get(node)
        if idx is None:
            idx = len(self.adjacency)
            self._index[node] = idx
            self.adjacency.append([])
        return idx

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` was added to the network."""
        return node in self._index

    @property
    def num_nodes(self) -> int:
        """Number of nodes created so far."""
        return len(self.adjacency)

    def add_edge(self, source: Node, target: Node, capacity: int) -> int:
        """Add a directed arc and its zero-capacity residual twin.

        Returns the arc's edge index (the twin is ``index ^ 1``).
        """
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity}")
        u = self.node_id(source)
        v = self.node_id(target)
        index = len(self.to)
        self.to.append(v)
        self.capacity.append(capacity)
        self.adjacency[u].append(index)
        self.to.append(u)
        self.capacity.append(0)
        self.adjacency[v].append(index + 1)
        return index

    def residual(self, edge_index: int) -> int:
        """Remaining capacity of an arc."""
        return self.capacity[edge_index]

    def push(self, edge_index: int, amount: int) -> None:
        """Send ``amount`` units along an arc, updating the residual twin."""
        self.capacity[edge_index] -= amount
        self.capacity[edge_index ^ 1] += amount

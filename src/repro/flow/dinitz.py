"""Dinitz' max-flow algorithm (the min-cut engine behind BalancedCut).

Level graph by BFS, blocking flow by iterative DFS with the current-arc
optimisation.  ``O(V^2 E)`` in general, and ``O(E * sqrt(V))`` on the
unit-capacity vertex-split networks produced by
:mod:`repro.flow.vertex_cut`, which is what the paper's Lemma 3.5 relies
on.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

from repro.flow.network import FlowNetwork, Node


def _bfs_levels(net: FlowNetwork, s: int, t: int) -> List[int]:
    levels = [-1] * net.num_nodes
    levels[s] = 0
    queue = deque([s])
    while queue:
        v = queue.popleft()
        for edge in net.adjacency[v]:
            if net.capacity[edge] <= 0:
                continue
            w = net.to[edge]
            if levels[w] == -1:
                levels[w] = levels[v] + 1
                queue.append(w)
    return levels


def _blocking_flow(
    net: FlowNetwork, s: int, t: int, levels: List[int], cursor: List[int]
) -> int:
    """Push one augmenting path along the level graph; 0 when exhausted."""
    path: List[int] = []  # edge indices
    v = s
    while True:
        if v == t:
            bottleneck = min(net.capacity[e] for e in path)
            for e in path:
                net.push(e, bottleneck)
            return bottleneck
        advanced = False
        while cursor[v] < len(net.adjacency[v]):
            edge = net.adjacency[v][cursor[v]]
            w = net.to[edge]
            if net.capacity[edge] > 0 and levels[w] == levels[v] + 1:
                path.append(edge)
                v = w
                advanced = True
                break
            cursor[v] += 1
        if advanced:
            continue
        if v == s:
            return 0
        # Dead end: retreat and invalidate the vertex for this phase.
        levels[v] = -1
        v = net.to[path.pop() ^ 1]
        cursor[v] += 1


def max_flow(net: FlowNetwork, source: Node, sink: Node) -> int:
    """Total maximum flow from ``source`` to ``sink``."""
    s = net.node_id(source)
    t = net.node_id(sink)
    total = 0
    while True:
        levels = _bfs_levels(net, s, t)
        if levels[t] == -1:
            return total
        cursor = [0] * net.num_nodes
        while True:
            pushed = _blocking_flow(net, s, t, levels, cursor)
            if pushed == 0:
                break
            total += pushed


def residual_reachable(net: FlowNetwork, source: Node) -> Set[int]:
    """Node ids reachable from ``source`` in the residual network.

    Call after :func:`max_flow`; the returned set is the source side of
    a minimum cut (max-flow min-cut theorem).
    """
    s = net.node_id(source)
    seen = {s}
    queue = deque([s])
    while queue:
        v = queue.popleft()
        for edge in net.adjacency[v]:
            w = net.to[edge]
            if net.capacity[edge] > 0 and w not in seen:
                seen.add(w)
                queue.append(w)
    return seen

"""Minimum s-t *vertex* cut via vertex splitting.

BalancedCut contracts its two grown regions into supernodes and needs the
smallest set of middle-region vertices whose removal disconnects them.
The classic reduction: every splittable vertex ``v`` becomes an arc
``v_in -> v_out`` of capacity 1, original edges become infinite-capacity
arcs between the corresponding sides, and the min edge cut of the
transformed network — all of whose saturated arcs are split arcs — is the
min vertex cut.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.flow.dinitz import max_flow, residual_reachable
from repro.flow.network import FlowNetwork
from repro.graph.graph import Graph
from repro.types import Vertex

_SOURCE = ("super", "source")
_SINK = ("super", "sink")


def _in(v: Vertex) -> Tuple[Vertex, str]:
    return (v, "in")


def _out(v: Vertex) -> Tuple[Vertex, str]:
    return (v, "out")


def min_vertex_cut_between_regions(
    graph: Graph,
    left_region: Iterable[Vertex],
    right_region: Iterable[Vertex],
    middle: Iterable[Vertex],
) -> List[Vertex]:
    """Smallest subset of ``middle`` separating the two regions.

    ``left_region`` and ``right_region`` are contracted into a source and
    a sink supernode; only ``middle`` vertices are splittable (capacity
    1).  The three sets must be disjoint and cover every vertex incident
    to a crossing edge.  Raises ``ValueError`` when the regions are
    directly adjacent (no vertex cut inside ``middle`` can exist).

    Returns the cut sorted by vertex id.
    """
    left = set(left_region)
    right = set(right_region)
    middle_set = set(middle)
    infinite = len(middle_set) + 1  # any finite cut beats this

    net = FlowNetwork()
    net.node_id(_SOURCE)
    net.node_id(_SINK)
    for v in middle_set:
        net.add_edge(_in(v), _out(v), 1)

    for u, v, _w, _c in graph.edges():
        u_left, v_left = u in left, v in left
        u_right, v_right = u in right, v in right
        if (u_left and v_right) or (u_right and v_left):
            raise ValueError(
                f"regions are directly adjacent via edge ({u}, {v}); "
                "no vertex cut inside the middle region exists"
            )
        if u_left and v in middle_set:
            net.add_edge(_SOURCE, _in(v), infinite)
        elif v_left and u in middle_set:
            net.add_edge(_SOURCE, _in(u), infinite)
        elif u_right and v in middle_set:
            net.add_edge(_out(v), _SINK, infinite)
        elif v_right and u in middle_set:
            net.add_edge(_out(u), _SINK, infinite)
        elif u in middle_set and v in middle_set:
            net.add_edge(_out(u), _in(v), infinite)
            net.add_edge(_out(v), _in(u), infinite)
        # Edges inside one region, or touching vertices outside all three
        # sets, are irrelevant to the cut.

    flow = max_flow(net, _SOURCE, _SINK)
    if flow >= infinite:
        raise ValueError("regions are connected outside the middle region")

    reachable = residual_reachable(net, _SOURCE)
    cut = [
        v
        for v in middle_set
        if net.has_node(_in(v))
        and net.node_id(_in(v)) in reachable
        and (net.has_node(_out(v)) and net.node_id(_out(v)) not in reachable)
    ]
    if len(cut) != flow:
        raise AssertionError(
            f"min-cut extraction mismatch: flow={flow}, |cut|={len(cut)}"
        )
    return sorted(cut)


def min_vertex_cut_pair(
    graph: Graph, source: Vertex, target: Vertex
) -> List[Vertex]:
    """Smallest vertex set (excluding endpoints) separating two vertices.

    Raises ``ValueError`` when the vertices are adjacent.  Convenience
    wrapper used by tests and the partition module's sanity checks.
    """
    middle: Set[Vertex] = set(graph.vertices()) - {source, target}
    return min_vertex_cut_between_regions(graph, [source], [target], middle)

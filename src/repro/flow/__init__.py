"""Max-flow and minimum vertex cuts (BalancedCut's cut engine)."""

from repro.flow.dinitz import max_flow, residual_reachable
from repro.flow.network import FlowNetwork
from repro.flow.vertex_cut import (
    min_vertex_cut_between_regions,
    min_vertex_cut_pair,
)

__all__ = [
    "FlowNetwork",
    "max_flow",
    "min_vertex_cut_between_regions",
    "min_vertex_cut_pair",
    "residual_reachable",
]

"""Shared value types for the :mod:`repro` library.

The library works on undirected road networks with positive integer (or
float) edge weights.  Path *counts* are exact Python integers throughout:
unit-weight grids produce combinatorially large counts that would silently
overflow fixed-width integers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import NamedTuple, Tuple, Union

#: Vertex identifier.  Vertices are dense integers ``0..n-1``.
Vertex = int

#: Edge weight (distance).  Positive; DIMACS road networks use integers.
Weight = Union[int, float]

#: An undirected edge with a weight, as ``(u, v, weight)``.
WeightedEdge = Tuple[int, int, Weight]

#: Sentinel distance for "unreachable".
INF: float = math.inf


class QueryResult(NamedTuple):
    """Answer to a shortest path counting query ``Q(s, t)``.

    A named tuple (not a dataclass) because query engines allocate one
    per answered pair — tuple construction is measurably cheaper on the
    batch hot path, and unpacking ``dist, count = index.query(s, t)``
    comes for free.

    Attributes:
        distance: shortest path distance ``sd(s, t)``; ``INF`` when the
            two vertices are disconnected.
        count: number of distinct shortest paths ``spc(s, t)``; ``0`` when
            disconnected.  ``Q(v, v)`` is ``(0, 1)`` by convention.
    """

    distance: Weight
    count: int

    @property
    def connected(self) -> bool:
        """Whether a path between the query vertices exists."""
        return self.count > 0


@dataclass(frozen=True)
class QueryStats:
    """A query result enriched with work counters (Exp-2, Fig. 9)."""

    result: QueryResult
    visited_labels: int

    def __iter__(self):
        yield self.result
        yield self.visited_labels


@dataclass(frozen=True)
class Partition:
    """A vertex cut partition ``(L, C, R)`` of a graph.

    ``C`` separates ``L`` from ``R``; the three parts are disjoint and
    their union is the full vertex set of the partitioned graph.
    """

    left: Tuple[int, ...]
    cut: Tuple[int, ...]
    right: Tuple[int, ...]

    def __iter__(self):
        yield self.left
        yield self.cut
        yield self.right

    @property
    def is_degenerate(self) -> bool:
        """True when no split was found and the cut swallowed every vertex."""
        return not self.left and not self.right

"""Space-Saving heavy-hitter sketch over hashable stream keys.

The serving tier needs to *observe* its own key distribution — which
``(s, t)`` pairs are hot — without keeping a counter per distinct pair
(a road-network workload has quadratically many).  Space-Saving
(Metwally, Agrawal, El Abbadi 2005) tracks at most ``capacity``
candidate keys in O(capacity) memory with the classic guarantees over
a stream of ``N`` offers:

* every reported estimate **over**-counts: ``true <= estimate`` and
  ``estimate - true <= error <= N / capacity``;
* any key whose true frequency exceeds ``N / capacity`` is guaranteed
  to be tracked.

Offers are O(1) amortised (dict moves between count buckets plus a
monotone min-count cursor), so the sketch can sit on the server's
per-query hot path.  Sketches are **mergeable** across workers
(Agarwal et al., *Mergeable Summaries*): a key absent from a full
sketch may have occurred up to that sketch's min count, so the merge
adds ``min_count`` for absent keys to both the estimate and the error
— the summed error bound ``sum_i N_i / capacity`` survives, which is
what lets the fleet router fold per-worker sketches into one
``top_pairs`` view.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

Key = Hashable

#: One reported entry: ``(key, estimated count, max overcount)``.
TopEntry = Tuple[Key, int, int]


class SpaceSaving:
    """Bounded-memory heavy-hitter counter (Space-Saving algorithm)."""

    __slots__ = (
        "capacity", "total", "_counts", "_errors", "_buckets", "_min",
        "_floor",
    )

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: Stream length: total weight offered (pre-merge offers only).
        self.total = 0
        self._counts: Dict[Key, int] = {}
        self._errors: Dict[Key, int] = {}
        #: count -> set of keys currently at that count; with the
        #: monotone ``_min`` cursor this gives O(1) amortised eviction.
        self._buckets: Dict[int, set] = {}
        self._min = 0
        #: Extra upper bound on untracked keys carried through merges
        #: (a key dropped by merge truncation, or unseen by every
        #: source sketch, may still have occurred this often).
        self._floor = 0

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Key) -> bool:
        return key in self._counts

    @property
    def min_count(self) -> int:
        """Smallest tracked estimate (0 while under capacity).

        This is the per-key error ceiling: an untracked key occurred at
        most ``min_count`` times, and no estimate overcounts by more.
        """
        if len(self._counts) < self.capacity:
            return 0
        return self._min

    @property
    def untracked_bound(self) -> int:
        """Largest count an untracked key could truly have."""
        return max(self._floor, self.min_count)

    def _move(self, key: Key, old: int, new: int) -> None:
        bucket = self._buckets[old]
        bucket.discard(key)
        if not bucket:
            del self._buckets[old]
        self._buckets.setdefault(new, set()).add(key)
        self._counts[key] = new

    def _advance_min(self) -> None:
        # The cursor only moves up (counts never decrease), so the
        # total scan work over a stream of N offers is <= max(min)
        # <= N / capacity — amortised O(1) per offer.
        while self._min not in self._buckets:
            self._min += 1

    def offer(self, key: Key, count: int = 1) -> bool:
        """Count one occurrence of ``key`` (``count`` of them).

        Returns whether ``key`` was already tracked before this offer —
        callers attributing per-key behaviour (cache hits among heavy
        hitters vs the tail) get the membership test for free.
        """
        self.total += count
        counts = self._counts
        current = counts.get(key)
        if current is not None:
            self._move(key, current, current + count)
            if current == self._min:
                self._advance_min()
            return True
        buckets = self._buckets
        if len(counts) < self.capacity:
            counts[key] = count
            self._errors[key] = 0
            buckets.setdefault(count, set()).add(key)
            if len(counts) == self.capacity:
                self._min = min(buckets)
            return False
        # Full: the new key inherits the minimum counter — the classic
        # Space-Saving replacement that keeps estimates upper bounds.
        # This branch sits on the server's per-request path for every
        # first-sighted pair, so it is written flat: the victim is
        # popped straight out of its bucket and the bucket moves are
        # inlined rather than routed through :meth:`_move`.
        errors = self._errors
        floor = self._min
        bucket = buckets[floor]
        victim = bucket.pop()
        del counts[victim]
        del errors[victim]
        new = floor + count
        counts[key] = new
        errors[key] = floor
        target = buckets.get(new)
        if target is None:
            buckets[new] = {key}
        else:
            target.add(key)
        if not bucket:
            del buckets[floor]
            self._advance_min()
        return False

    def estimate(self, key: Key) -> Tuple[int, int]:
        """``(estimate, error)`` for ``key``.

        Untracked keys report ``(min_count, min_count)`` — the tightest
        upper bound the sketch can give.
        """
        count = self._counts.get(key)
        if count is None:
            bound = self.untracked_bound
            return bound, bound
        return count, self._errors[key]

    def top(self, n: Optional[int] = None) -> List[TopEntry]:
        """The tracked keys, heaviest first (deterministic tie-break)."""
        entries = sorted(
            (
                (key, count, self._errors[key])
                for key, count in self._counts.items()
            ),
            key=lambda e: (-e[1], e[2], repr(e[0])),
        )
        return entries if n is None else entries[:n]

    # ------------------------------------------------------------------
    # serialization + merge (fleet aggregation)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready snapshot (keys serialized as-is, so use
        JSON-safe keys — the server stores ``[low, high]`` pairs as
        2-lists via :meth:`top`-shaped entries)."""
        return {
            "capacity": self.capacity,
            "total": self.total,
            "floor": self._floor,
            "entries": [
                [key, count, error] for key, count, error in self.top()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpaceSaving":
        """Rebuild a sketch from :meth:`to_dict` output.

        Keys that arrived as JSON lists are normalised to tuples so a
        round-tripped sketch merges cleanly with a live one.
        """
        sketch = cls(int(payload["capacity"]))
        entries = payload.get("entries", [])
        for key, count, error in entries:
            if isinstance(key, list):
                key = tuple(key)
            sketch._counts[key] = int(count)
            sketch._errors[key] = int(error)
            sketch._buckets.setdefault(int(count), set()).add(key)
        if len(sketch._counts) >= sketch.capacity:
            sketch._min = min(sketch._buckets)
        sketch.total = int(payload.get("total", 0))
        sketch._floor = int(payload.get("floor", 0))
        return sketch

    @classmethod
    def merge(
        cls,
        sketches: Sequence["SpaceSaving"],
        capacity: Optional[int] = None,
    ) -> "SpaceSaving":
        """Fold worker sketches into one (mergeable-summaries rule).

        For each key in the union: the merged estimate sums each
        sketch's estimate, substituting that sketch's ``min_count``
        where the key is untracked (it may have occurred that often
        unseen); errors sum the same way.  The heaviest ``capacity``
        keys are kept, so the result is again a valid Space-Saving
        summary of the concatenated streams.
        """
        if not sketches:
            raise ValueError("merge needs at least one sketch")
        if capacity is None:
            capacity = max(s.capacity for s in sketches)
        union: set = set()
        for sketch in sketches:
            union.update(sketch._counts)
        merged = cls(capacity)
        scored: List[TopEntry] = []
        for key in union:
            count = error = 0
            for sketch in sketches:
                est, err = sketch.estimate(key)
                count += est
                error += err
            scored.append((key, count, error))
        scored.sort(key=lambda e: (-e[1], e[2], repr(e[0])))
        for key, count, error in scored[:capacity]:
            merged._counts[key] = count
            merged._errors[key] = error
            merged._buckets.setdefault(count, set()).add(key)
        if len(merged._counts) >= capacity:
            merged._min = min(merged._buckets)
        # Untracked keys in the merged view: dropped by the truncation
        # just above (bounded by the largest dropped estimate) or
        # unseen by every source (bounded by the summed source bounds).
        dropped = scored[capacity][1] if len(scored) > capacity else 0
        absent = sum(s.untracked_bound for s in sketches)
        merged._floor = max(dropped, absent)
        merged.total = sum(s.total for s in sketches)
        return merged


def pair_key(source: int, target: int) -> Tuple[int, int]:
    """The symmetric sketch key for an ``(s, t)`` query — SPC queries
    are undirected, so both orientations count toward one pair."""
    return (source, target) if source <= target else (target, source)

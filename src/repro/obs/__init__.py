"""Process-local observability: a metrics registry plus span tracing.

The paper's headline claims are measurements — construction time
(Fig. 12), visited labels per query (Fig. 9), index size (Fig. 14) —
so the library carries a first-class instrumentation layer:

* **Metrics** — counters, gauges, and fixed-bucket histograms kept in a
  :class:`~repro.obs.recorders.Recorder`.
* **Spans** — nested timed sections (``with rec.span("ctls.build.node",
  depth=3): ...``) exportable as Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto) or aggregated into a flat summary.
* **Request observability** — structured JSON-lines request logging
  with correlation ids (:mod:`repro.obs.logging`), Prometheus text
  exposition of any metrics snapshot (:mod:`repro.obs.prometheus`),
  and rolling SLO windows with latency/error objectives
  (:mod:`repro.obs.slo`) — the serving layer's per-request story.
* **Performance telemetry** — the ``BENCH_*.json`` benchmark record
  schema and writer (:mod:`repro.obs.perf`), build-phase timing and
  memory tracking (:mod:`repro.obs.buildphase`), and a wall-clock
  sampling profiler with collapsed-stack / Chrome-trace export
  (:mod:`repro.obs.sampling`).

Observability is *disabled by default* and costs near zero when off:
the module-level :data:`ENABLED` flag gates per-query timing, and the
active recorder is a :data:`NULL_RECORDER` whose methods are no-ops.
Enable it with::

    from repro import obs

    rec = obs.configure()
    index.query(s, t)                        # now observed
    rec.metrics_snapshot()                   # counters/gauges/histograms
    obs.write_chrome_trace("out.json", rec.trace_events)
    obs.disable()

Index *construction* always records into a build-local recorder (that
is where :class:`~repro.core.base.BuildStats` comes from); when the
global recorder is configured, build-local events are forwarded to it
so ``repro-spc build --trace`` sees every span.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.logging import (
    JsonLinesWriter,
    RequestIdGenerator,
    RequestLog,
    Sampler,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_SECONDS,
    Counter,
    Gauge,
    Histogram,
)
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    validate_prometheus_text,
)
from repro.obs.buildphase import (
    BuildPhaseTracker,
    PhaseStat,
    ProgressPrinter,
    make_build_info,
    peak_rss_bytes,
    phase_breakdown,
)
from repro.obs.perf import (
    PerfRecord,
    PerfSuite,
    append_trajectory,
    capture_environment,
    validate_perf_payload,
)
from repro.obs.recorders import NULL_RECORDER, NullRecorder, Recorder
from repro.obs.sampling import SamplingProfiler, profile_for
from repro.obs.sketch import SpaceSaving, pair_key
from repro.obs.slo import SloPolicy, SloWindow
from repro.obs.tracing import (
    CLOCK_EPOCH,
    TRACEPARENT_HEADER,
    SpanCollector,
    SpanEvent,
    TraceContext,
    chrome_trace_payload,
    cross_process_links,
    merge_trace_fragments,
    new_span_id,
    span_summary,
    validate_chrome_trace,
    wall_clock_anchor,
    write_chrome_trace,
)

#: Fast-path gate: per-query instrumentation in the indexes checks this
#: one module attribute and skips all timing work when ``False``.
ENABLED: bool = False

_active = NULL_RECORDER


def configure(recorder: Optional[Recorder] = None) -> Recorder:
    """Install ``recorder`` (or a fresh one) as the active recorder.

    Returns the now-active recorder; all query instrumentation and all
    build-scope forwarding target it until :func:`disable` is called.
    """
    global ENABLED, _active
    _active = recorder if recorder is not None else Recorder()
    ENABLED = True
    return _active


def disable() -> None:
    """Swap the no-op recorder back in (the default state)."""
    global ENABLED, _active
    _active = NULL_RECORDER
    ENABLED = False


def recorder():
    """The active recorder (:data:`NULL_RECORDER` when disabled)."""
    return _active


def build_scope() -> Recorder:
    """A fresh recorder scoped to one index build.

    Always a real :class:`Recorder` — construction counters feed
    :class:`~repro.core.base.BuildStats` even when observability is
    globally disabled.  When configured, every increment, observation,
    and span is forwarded to the active recorder too.
    """
    return Recorder(forward_to=_active if ENABLED else None)


def span(name: str, **attrs):
    """A span on the active recorder (no-op context manager when off)."""
    return _active.span(name, **attrs)


__all__ = [
    "BuildPhaseTracker",
    "CLOCK_EPOCH",
    "COUNT_BUCKETS",
    "Counter",
    "ENABLED",
    "Gauge",
    "Histogram",
    "JsonLinesWriter",
    "LATENCY_BUCKETS_SECONDS",
    "NULL_RECORDER",
    "NullRecorder",
    "PROMETHEUS_CONTENT_TYPE",
    "PerfRecord",
    "PerfSuite",
    "PhaseStat",
    "ProgressPrinter",
    "Recorder",
    "RequestIdGenerator",
    "RequestLog",
    "Sampler",
    "SamplingProfiler",
    "SloPolicy",
    "SloWindow",
    "SpaceSaving",
    "SpanCollector",
    "SpanEvent",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "append_trajectory",
    "build_scope",
    "capture_environment",
    "chrome_trace_payload",
    "configure",
    "cross_process_links",
    "disable",
    "make_build_info",
    "merge_trace_fragments",
    "new_span_id",
    "pair_key",
    "peak_rss_bytes",
    "phase_breakdown",
    "profile_for",
    "recorder",
    "render_prometheus",
    "span",
    "span_summary",
    "validate_chrome_trace",
    "validate_perf_payload",
    "wall_clock_anchor",
    "write_chrome_trace",
]

"""Metric instruments: counters, gauges, fixed-bucket histograms.

All instruments are plain stdlib objects owned by a
:class:`~repro.obs.recorders.Recorder`; nothing here is thread-aware —
the library's parallelism is process-based, and each process records
locally.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Sequence, Tuple, Union

Number = Union[int, float]


def decade_buckets(
    low_exponent: int,
    high_exponent: int,
    mantissas: Sequence[float] = (1.0, 2.5, 5.0),
) -> Tuple[float, ...]:
    """Log-spaced bucket boundaries ``m * 10^e`` over the decade range."""
    return tuple(
        m * 10.0 ** e
        for e in range(low_exponent, high_exponent + 1)
        for m in mantissas
    )


#: Default boundaries for ``*_seconds`` histograms: 100 ns .. 500 s.
LATENCY_BUCKETS_SECONDS = decade_buckets(-7, 2)

#: Default boundaries for dimensionless histograms: 1 .. 5e9.
COUNT_BUCKETS = decade_buckets(0, 9)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def incr(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        self.value += amount


class Gauge:
    """A point-in-time value, settable or tracked as a running maximum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Overwrite the gauge."""
        self.value = value

    def update_max(self, value: Number) -> None:
        """Keep the larger of the current and the new value."""
        if value > self.value:
            self.value = value


class Histogram:
    """A fixed-boundary histogram with streaming min/max/sum.

    Bucket ``i`` covers ``(boundaries[i-1], boundaries[i]]``; one
    overflow bucket catches values above the last boundary.  Percentiles
    are estimated by linear interpolation inside the covering bucket,
    clamped to the observed ``[min, max]`` range — exact enough for
    p50/p95/p99 reporting with log-spaced boundaries.
    """

    __slots__ = ("boundaries", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, boundaries: Sequence[float]) -> None:
        ordered = tuple(sorted(boundaries))
        if not ordered:
            raise ValueError("a histogram needs at least one boundary")
        self.boundaries = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: Number) -> None:
        """Record one sample."""
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        if self.count == 0:
            self.min = self.max = value
        elif value < self.min:
            self.min = value
        elif value > self.max:
            self.max = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (``nan`` when empty).

        The empty case is explicit: a histogram with no samples has no
        mean, and ``nan`` propagates visibly instead of masquerading as
        a measured 0.  Renderers that want ``null`` (the ``/stats``
        endpoint, :meth:`snapshot`) translate ``nan`` themselves.
        """
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile, ``q`` in ``[0, 1]`` (``nan`` when
        empty — there is no quantile of zero samples)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                low = self.boundaries[i - 1] if i > 0 else self.min
                high = (
                    self.boundaries[i]
                    if i < len(self.boundaries)
                    else self.max
                )
                fraction = (rank - cumulative) / bucket_count
                value = low + fraction * (high - low)
                return min(max(value, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram.

        Both histograms must share identical boundaries (the sliding
        SLO window merges per-second sub-histograms this way).
        """
        if other.boundaries != self.boundaries:
            raise ValueError(
                "cannot merge histograms with different boundaries"
            )
        if other.count == 0:
            return
        if self.count == 0:
            self.min, self.max = other.min, other.max
        else:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        counts = self.bucket_counts
        for i, c in enumerate(other.bucket_counts):
            counts[i] += c
        self.count += other.count
        self.total += other.total

    def bucket_label(self, index: int) -> str:
        """Human-readable label of bucket ``index`` (for reports)."""
        if index < len(self.boundaries):
            return f"<= {self.boundaries[index]:g}"
        return f"> {self.boundaries[-1]:g}"

    def nonzero_buckets(self) -> Dict[str, int]:
        """``{bucket label: count}`` for buckets with at least one sample."""
        return {
            self.bucket_label(i): c
            for i, c in enumerate(self.bucket_counts)
            if c
        }

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly summary of the histogram state.

        Sample statistics of an empty histogram are ``None`` (JSON
        ``null``) rather than a bogus number — ``nan`` is not valid
        JSON and 0 would read as a real measurement.
        """
        if self.count == 0:
            return {
                "count": 0,
                "sum": 0.0,
                "min": None,
                "max": None,
                "mean": None,
                "p50": None,
                "p95": None,
                "p99": None,
                "buckets": {},
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": self.nonzero_buckets(),
        }

"""Structured JSON-lines request logging: access log + slow-query log.

The serving layer's per-request story (the paper's Fig. 9/Fig. 11
measurements are *per query*, and so is production debugging) needs
machine-parseable records, not printf lines.  This module emits one
JSON object per line with a fixed event vocabulary:

* ``access`` — one record per answered HTTP request.  Fast requests
  can be sampled 1-in-N (``sample_every``) so a saturated server does
  not spend its cycles logging; slow and non-200 requests are always
  recorded.
* ``slow_query`` — an additional record for every request whose
  latency crosses ``slow_ms``, carrying the algorithmic counters
  (labels scanned, batch size, queue wait) when the server knows them.
* ``server`` — lifecycle records (start, drain).

Every record shares the envelope fields ``event``, ``ts`` (Unix
seconds), and — for request records — ``request_id``.  The request id
is what correlates a record with the ``X-Request-Id`` response header
the client saw; see :class:`RequestIdGenerator`.

Sampling is *deterministic under a seed*: :class:`Sampler` draws from
its own ``random.Random(seed)``, so tests (and incident replays) can
predict exactly which records a workload produces.
"""

from __future__ import annotations

import itertools
import json
import os
import random
import re
import time
from contextlib import contextmanager
from typing import IO, Optional

__all__ = [
    "JsonLinesWriter",
    "RequestIdGenerator",
    "RequestLog",
    "Sampler",
]


class RequestIdGenerator:
    """Process-unique request ids: ``<instance>-<counter hex>``.

    The instance prefix is random per generator (4 bytes of
    ``os.urandom``), so ids from restarted servers never collide in
    aggregated logs; the counter makes ids ordered and cheap — no
    per-request entropy on the hot path.
    """

    __slots__ = ("prefix", "_counter")

    def __init__(self, prefix: Optional[str] = None) -> None:
        self.prefix = prefix if prefix is not None else os.urandom(4).hex()
        self._counter = itertools.count(1)

    def next_id(self) -> str:
        """The next request id (monotonic within this generator)."""
        return f"{self.prefix}-{next(self._counter):06x}"


class Sampler:
    """Keep roughly 1 in ``every`` events, deterministically per seed.

    ``every <= 1`` keeps everything.  The decision stream depends only
    on the seed and the call sequence, never on wall clock or ids, so
    a replayed workload samples the same records — that determinism is
    pinned by ``tests/obs/test_logging.py``.
    """

    __slots__ = ("every", "_rng", "_getrandbits", "_bits")

    def __init__(self, every: int, seed: int = 0) -> None:
        if every < 0:
            raise ValueError(f"sample_every must be >= 0, got {every}")
        self.every = every
        self._rng = random.Random(seed)
        self._getrandbits = self._rng.getrandbits
        self._bits = every.bit_length()

    def keep(self) -> bool:
        """Whether the next event should be logged.

        Inlines ``Random._randbelow``'s rejection loop over a cached
        ``getrandbits`` — the decision stream is bit-identical to
        ``randrange(every) == 0`` at a quarter of the cost, and the
        server calls this once per finished request.
        """
        every = self.every
        if every <= 1:
            return True
        getrandbits = self._getrandbits
        r = getrandbits(self._bits)
        while r >= every:
            r = getrandbits(self._bits)
        return r == 0


class JsonLinesWriter:
    """Append JSON records to a text stream, one object per line.

    Records are dumped with compact separators and sorted keys, so the
    log is diffable and greppable; each ``write`` ends with exactly one
    ``\\n`` and a flush (log lines must survive a crash).  Inside a
    :meth:`batched` block, lines are collected and written with a
    single flush on exit — the server uses this to amortise syscalls
    when it drains a burst of deferred records.
    """

    __slots__ = ("_stream", "_buffer", "records_written")

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        self._buffer: Optional[list] = None
        self.records_written = 0

    def write(self, record: dict) -> None:
        """Serialize and append one record."""
        self.write_line(
            json.dumps(record, separators=(",", ":"), sort_keys=True,
                       default=str)
            + "\n"
        )

    def write_line(self, line: str) -> None:
        """Append one pre-serialized record line (must end in ``\\n``)."""
        if self._buffer is not None:
            self._buffer.append(line)
        else:
            self._stream.write(line)
            self._stream.flush()
        self.records_written += 1

    @contextmanager
    def batched(self):
        """Collect lines written inside the block; flush once on exit."""
        if self._buffer is not None:  # reentrant: the outer block flushes
            yield
            return
        self._buffer = []
        try:
            yield
        finally:
            lines, self._buffer = self._buffer, None
            if lines:
                self._stream.write("".join(lines))
                self._stream.flush()


#: Strings that need no JSON escaping (the common ids/methods/paths).
_PLAIN_STRING = re.compile(r"^[A-Za-z0-9._:/?=&-]*$").match


def _json_string(value: str) -> str:
    """``value`` as a JSON string literal, fast for plain strings.

    Request ids, methods, and paths are client-controlled bytes — the
    regex gate keeps the hot path allocation-light while anything
    containing quotes, backslashes, or control characters still goes
    through ``json.dumps`` for correct escaping.
    """
    if _PLAIN_STRING(value):
        return f'"{value}"'
    return json.dumps(value)


#: Encoded-literal cache for the handful of distinct methods/paths a
#: server ever logs.  Never used for request ids (unique per request —
#: they would evict everything useful and then pin the cache full).
_ROUTE_CACHE: dict = {}


def _route_string(value: str) -> str:
    """Like :func:`_json_string` but memoized for methods and paths."""
    cached = _ROUTE_CACHE.get(value)
    if cached is None:
        cached = _json_string(value)
        if len(_ROUTE_CACHE) < 256:
            _ROUTE_CACHE[value] = cached
    return cached


def _access_line(
    request_id, method, path, status, latency_ms,
    source, target, cache_hit, batch_size, queue_wait_s, scan_s,
    labels_scanned, trace_id, ts_part,
):
    """One ``access`` record as a JSON line.

    Keys are emitted already sorted, so the output is byte-identical
    to ``json.dumps(record, sort_keys=True, separators=(",", ":"))``
    at a fraction of the cost; ``ts_part`` is the pre-rendered
    ``"ts":...`` fragment so a burst can share one clock read.
    """
    parts = []
    if batch_size is not None:
        parts.append(f'"batch_size":{batch_size}')
    if cache_hit is not None:
        parts.append(
            '"cache_hit":true' if cache_hit else '"cache_hit":false'
        )
    parts.append('"event":"access"')
    if labels_scanned is not None:
        parts.append(f'"labels_scanned":{labels_scanned}')
    parts.append(f'"latency_ms":{latency_ms:.3f}')
    parts.append(f'"method":{_route_string(method)}')
    parts.append(f'"path":{_route_string(path)}')
    if queue_wait_s is not None:
        parts.append(f'"queue_wait_ms":{queue_wait_s * 1000.0:.3f}')
    parts.append(f'"request_id":{_json_string(request_id)}')
    if scan_s is not None:
        parts.append(f'"scan_ms":{scan_s * 1000.0:.3f}')
    if source is not None:
        parts.append(f'"source":{source}')
    parts.append(f'"status":{status}')
    if target is not None:
        parts.append(f'"target":{target}')
    if trace_id is not None:
        parts.append(f'"trace_id":{_json_string(trace_id)}')
    parts.append(ts_part)
    return "{" + ",".join(parts) + "}\n"


class RequestLog:
    """The server's structured request log (access + slow-query).

    One instance per server; :meth:`log_request` is the single hot-path
    entry point.  The caller passes whatever it knows about the request
    — unknown fields are simply omitted from the record, so cache hits
    (no batch) and scan misses (batch metadata from the coalescer)
    produce the same record type with different field sets.

    Fast 200s (the overwhelming majority under load) are serialized by
    a hand-rolled formatter emitting the same sorted-key compact JSON
    as :class:`JsonLinesWriter` at a fraction of the cost; slow and
    failed requests take the ``json.dumps`` path, where a few extra
    microseconds are irrelevant.
    """

    def __init__(
        self,
        stream: IO[str],
        *,
        slow_ms: float = 100.0,
        sample_every: int = 1,
        seed: int = 0,
        clock=time.time,
    ) -> None:
        if slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {slow_ms}")
        self.writer = JsonLinesWriter(stream)
        self.slow_ms = slow_ms
        self.sampler = Sampler(sample_every, seed)
        self._clock = clock
        self.access_records = 0
        self.slow_records = 0
        self.sampled_out = 0

    def log_server(self, event: str, **fields) -> None:
        """A lifecycle record (``event`` is e.g. ``"start"``)."""
        record = {"event": "server", "what": event, "ts": self._clock()}
        record.update(fields)
        self.writer.write(record)

    def log_request(
        self,
        *,
        request_id: str,
        method: str,
        path: str,
        status: int,
        latency_s: float,
        source: Optional[int] = None,
        target: Optional[int] = None,
        cache_hit: Optional[bool] = None,
        batch_size: Optional[int] = None,
        queue_wait_s: Optional[float] = None,
        scan_s: Optional[float] = None,
        labels_scanned: Optional[int] = None,
        error: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        """Record one finished request.

        Emits an ``access`` record (always for slow or non-200
        requests; sampled 1-in-N otherwise) and, when ``latency_s``
        crosses the slow threshold, a ``slow_query`` record carrying
        the same correlation id.  ``trace_id`` is the distributed
        trace the request rode in on (sampled requests only), stamped
        alongside ``request_id`` so a log line can be joined against a
        captured Chrome trace.
        """
        latency_ms = latency_s * 1000.0
        slow = latency_ms >= self.slow_ms > 0
        if not slow and status == 200 and not self.sampler.keep():
            self.sampled_out += 1
            return
        if not slow and error is None:
            self.writer.write_line(
                _access_line(
                    request_id, method, path, status, latency_ms,
                    source, target, cache_hit, batch_size,
                    queue_wait_s, scan_s, labels_scanned, trace_id,
                    f'"ts":{self._clock()!r}',
                )
            )
            self.access_records += 1
            return
        record = {
            "event": "access",
            "ts": self._clock(),
            "request_id": request_id,
            "method": method,
            "path": path,
            "status": status,
            "latency_ms": round(latency_ms, 3),
        }
        if source is not None:
            record["source"] = source
        if target is not None:
            record["target"] = target
        if cache_hit is not None:
            record["cache_hit"] = cache_hit
        if batch_size is not None:
            record["batch_size"] = batch_size
        if queue_wait_s is not None:
            record["queue_wait_ms"] = round(queue_wait_s * 1000.0, 3)
        if scan_s is not None:
            record["scan_ms"] = round(scan_s * 1000.0, 3)
        if labels_scanned is not None:
            record["labels_scanned"] = labels_scanned
        if error is not None:
            record["error"] = error
        if trace_id is not None:
            record["trace_id"] = trace_id
        self.writer.write(record)
        self.access_records += 1
        if slow:
            slow_record = dict(record)
            slow_record["event"] = "slow_query"
            slow_record["slow_ms_threshold"] = self.slow_ms
            self.writer.write(slow_record)
            self.slow_records += 1

    def log_batch(self, records, *, presampled: bool = False) -> None:
        """Record a burst of finished requests with a single flush.

        ``records`` are ``(request_id, method, path, status,
        latency_s, source, target, cache_hit, meta, labels_scanned,
        error, trace_id)`` tuples, where ``meta`` is the server's per-request
        coalescer metadata dict (``batch_size`` / ``queue_wait_s`` /
        ``scan_s`` keys) or ``None``.  Semantically identical to one
        :meth:`log_request` call per tuple, in order — same sampling
        stream, same slow/error handling — but positional and with
        one clock read and one flush for the whole burst, which is
        what lets a saturated server log every request.  Records in a
        burst therefore share a ``ts`` (latency_ms stays per-request).

        ``presampled=True`` means the caller already consulted
        :meth:`Sampler.keep` for each record (in the same order) and
        dropped the sampled-out ones — every record passed in is
        written.  The server does this at request-finish time so a
        dropped record never costs a tuple or a drain iteration.
        """
        writer = self.writer
        slow_ms = self.slow_ms
        keep = self.sampler.keep
        ts_part = f'"ts":{self._clock()!r}'
        with writer.batched():
            for (request_id, method, path, status, latency_s, source,
                 target, cache_hit, meta, labels_scanned,
                 error, trace_id) in records:
                latency_ms = latency_s * 1000.0
                if (latency_ms >= slow_ms > 0) or error is not None:
                    self.log_request(
                        request_id=request_id, method=method,
                        path=path, status=status, latency_s=latency_s,
                        source=source, target=target,
                        cache_hit=cache_hit,
                        batch_size=(
                            meta.get("batch_size") if meta else None
                        ),
                        queue_wait_s=(
                            meta.get("queue_wait_s") if meta else None
                        ),
                        scan_s=meta.get("scan_s") if meta else None,
                        labels_scanned=labels_scanned, error=error,
                        trace_id=trace_id,
                    )
                    continue
                if not presampled and status == 200 and not keep():
                    self.sampled_out += 1
                    continue
                if meta is not None:
                    batch_size = meta.get("batch_size")
                    queue_wait_s = meta.get("queue_wait_s")
                    scan_s = meta.get("scan_s")
                else:
                    batch_size = queue_wait_s = scan_s = None
                writer.write_line(
                    _access_line(
                        request_id, method, path, status, latency_ms,
                        source, target, cache_hit, batch_size,
                        queue_wait_s, scan_s, labels_scanned, trace_id,
                        ts_part,
                    )
                )
                self.access_records += 1

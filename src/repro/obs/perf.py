"""Benchmark telemetry: the ``BENCH_<name>.json`` performance trajectory.

Every benchmark under ``benchmarks/`` funnels its measurements through
one schema — :class:`PerfRecord` — and one writer — :class:`PerfSuite`
— so the repo accumulates machine-readable speed data next to the prose
claims.  A suite corresponds to one benchmark module (``bench_serve.py``
→ ``BENCH_serve.json``) and carries an environment stamp (git sha,
timestamp, host, python) shared by all its records.

Records keep the *raw samples* alongside derived percentiles: the
regression gate (:mod:`repro.bench.regression`) compares medians, but a
future reader can always re-derive tails from the samples.

Two durability artifacts come out of a bench run:

* ``BENCH_<name>.json`` at the repo root — the latest full payload for
  one suite, versioned in git so re-anchors can diff it across PRs.
* ``BENCH_TRAJECTORY.jsonl`` — one compact line per (git sha, suite)
  with just the headline medians, appended across runs; reruns at the
  same sha replace their previous line instead of stacking noise.

Units double as semantics for the regression gate: dimensionless ratios
(``"x"``) and deterministic counts (``"labels"``, ``"bytes"``,
``"count"``) are *portable* across hosts and gated tightly; absolute
wall-clock units (``"us/query"``, ``"qps"``, ``"s"``) depend on the
machine and get looser default tolerances.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError

__all__ = [
    "PERF_SCHEMA_VERSION",
    "PORTABLE_UNITS",
    "PerfError",
    "PerfRecord",
    "PerfSuite",
    "append_trajectory",
    "bench_filename",
    "capture_environment",
    "git_sha",
    "load_bench_payloads",
    "percentile",
    "validate_perf_payload",
]

#: Bumped whenever the payload shape changes incompatibly.
PERF_SCHEMA_VERSION = 1

#: Format tag carried by every payload, checked by the validator.
PERF_FORMAT = "repro-spc-bench"

#: Units whose values are comparable across machines: dimensionless
#: ratios and deterministic counts/sizes.  Everything else (latency,
#: QPS, seconds) is host-dependent.
PORTABLE_UNITS = frozenset({"x", "ratio", "count", "labels", "bytes", "entries"})

_DIRECTIONS = ("lower", "higher")


class PerfError(ReproError):
    """A perf record or payload is malformed."""


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise PerfError("percentile of empty sample set")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


def git_sha(cwd: Optional[Path] = None) -> str:
    """The current commit sha, or ``"unknown"`` outside a checkout.

    ``REPRO_GIT_SHA`` overrides — CI and tests pin it without needing a
    git binary or a repo.
    """
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def capture_environment(cwd: Optional[Path] = None) -> Dict[str, object]:
    """The environment stamp shared by all records of one suite."""
    return {
        "git_sha": git_sha(cwd),
        "timestamp": time.time(),
        "date": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass(frozen=True)
class PerfRecord:
    """One measured metric: raw samples plus derived statistics.

    ``direction`` states which way is better so the regression gate can
    be sign-aware; ``tolerance`` (optional) overrides the gate's
    per-unit default ratio for this metric alone.
    """

    metric: str
    unit: str
    samples: Tuple[float, ...]
    direction: str = "lower"
    dataset: Optional[str] = None
    tolerance: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.metric:
            raise PerfError("metric name must be non-empty")
        if not self.samples:
            raise PerfError(f"{self.metric}: at least one sample required")
        if self.direction not in _DIRECTIONS:
            raise PerfError(
                f"{self.metric}: direction must be one of {_DIRECTIONS}"
            )
        if self.tolerance is not None and self.tolerance < 1.0:
            raise PerfError(f"{self.metric}: tolerance must be >= 1.0")
        for sample in self.samples:
            if not isinstance(sample, (int, float)):
                raise PerfError(f"{self.metric}: non-numeric sample {sample!r}")

    @property
    def value(self) -> float:
        """The headline value: the median of the samples."""
        return percentile(self.samples, 50)

    @property
    def portable(self) -> bool:
        """Whether this metric is comparable across hosts."""
        return self.unit in PORTABLE_UNITS

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "metric": self.metric,
            "unit": self.unit,
            "direction": self.direction,
            "dataset": self.dataset,
            "samples": list(self.samples),
            "value": self.value,
            "p50": percentile(self.samples, 50),
            "p95": percentile(self.samples, 95),
            "p99": percentile(self.samples, 99),
            "portable": self.portable,
        }
        if self.tolerance is not None:
            data["tolerance"] = self.tolerance
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        return data


class PerfSuite:
    """Collects the records of one benchmark module and writes them.

    ``record()`` is the single entry point benchmarks call; the suite
    stamps the environment once at construction so every record of one
    run shares the same sha/timestamp.
    """

    def __init__(self, name: str, *, cwd: Optional[Path] = None) -> None:
        if not name:
            raise PerfError("suite name must be non-empty")
        self.name = name
        self.environment = capture_environment(cwd)
        self.records: List[PerfRecord] = []

    def record(
        self,
        metric: str,
        samples: Iterable[float],
        *,
        unit: str,
        direction: str = "lower",
        dataset: Optional[str] = None,
        tolerance: Optional[float] = None,
        **attrs: object,
    ) -> PerfRecord:
        """Add one metric; returns the frozen record."""
        rec = PerfRecord(
            metric=metric,
            unit=unit,
            samples=tuple(float(s) for s in samples),
            direction=direction,
            dataset=dataset,
            tolerance=tolerance,
            attrs=dict(attrs),
        )
        self.records.append(rec)
        return rec

    def payload(self) -> Dict[str, object]:
        """The full JSON payload for ``BENCH_<name>.json``."""
        return {
            "format": PERF_FORMAT,
            "version": PERF_SCHEMA_VERSION,
            "name": self.name,
            "environment": dict(self.environment),
            "records": [rec.to_dict() for rec in self.records],
        }

    def write(self, directory: Path) -> Path:
        """Write ``BENCH_<name>.json`` into ``directory`` atomically."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / bench_filename(self.name)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(self.payload(), indent=2, sort_keys=True) + "\n"
        )
        tmp.replace(path)
        return path


def bench_filename(name: str) -> str:
    """``BENCH_<name>.json`` for a suite name."""
    return f"BENCH_{name}.json"


def validate_perf_payload(payload: object) -> List[str]:
    """Schema-check one BENCH payload; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("format") != PERF_FORMAT:
        problems.append(
            f"format is {payload.get('format')!r}, expected {PERF_FORMAT!r}"
        )
    if payload.get("version") != PERF_SCHEMA_VERSION:
        problems.append(
            f"version is {payload.get('version')!r}, "
            f"expected {PERF_SCHEMA_VERSION}"
        )
    if not isinstance(payload.get("name"), str) or not payload.get("name"):
        problems.append("name must be a non-empty string")
    env = payload.get("environment")
    if not isinstance(env, dict):
        problems.append("environment must be an object")
    else:
        for key in ("git_sha", "timestamp", "host", "python"):
            if key not in env:
                problems.append(f"environment.{key} missing")
    records = payload.get("records")
    if not isinstance(records, list):
        problems.append("records must be a list")
        return problems
    if not records:
        problems.append("records is empty")
    for i, rec in enumerate(records):
        where = f"records[{i}]"
        if not isinstance(rec, dict):
            problems.append(f"{where} is not an object")
            continue
        metric = rec.get("metric")
        if not isinstance(metric, str) or not metric:
            problems.append(f"{where}.metric must be a non-empty string")
        else:
            where = f"records[{i}] ({metric})"
        if not isinstance(rec.get("unit"), str) or not rec.get("unit"):
            problems.append(f"{where}.unit must be a non-empty string")
        if rec.get("direction") not in _DIRECTIONS:
            problems.append(
                f"{where}.direction must be one of {_DIRECTIONS}"
            )
        samples = rec.get("samples")
        if (
            not isinstance(samples, list)
            or not samples
            or not all(isinstance(s, (int, float)) for s in samples)
        ):
            problems.append(f"{where}.samples must be a non-empty number list")
            continue
        for key in ("value", "p50", "p95", "p99"):
            if not isinstance(rec.get(key), (int, float)):
                problems.append(f"{where}.{key} must be a number")
        value = rec.get("value")
        if isinstance(value, (int, float)):
            expected = percentile(samples, 50)
            scale = max(abs(expected), 1e-12)
            if abs(value - expected) > 1e-9 * scale:
                problems.append(
                    f"{where}.value {value} != median(samples) {expected}"
                )
        tolerance = rec.get("tolerance")
        if tolerance is not None and (
            not isinstance(tolerance, (int, float)) or tolerance < 1.0
        ):
            problems.append(f"{where}.tolerance must be a number >= 1.0")
    return problems


def _trajectory_line(payload: Dict[str, object]) -> Dict[str, object]:
    env = payload.get("environment", {})
    metrics: Dict[str, float] = {}
    for rec in payload.get("records", []):
        key = rec["metric"]
        if rec.get("dataset"):
            key = f"{key}[{rec['dataset']}]"
        metrics[key] = rec["value"]
    return {
        "git_sha": env.get("git_sha", "unknown"),
        "timestamp": env.get("timestamp"),
        "date": env.get("date"),
        "name": payload.get("name"),
        "metrics": metrics,
    }


def append_trajectory(
    directory: Path,
    payload: Dict[str, object],
    *,
    filename: str = "BENCH_TRAJECTORY.jsonl",
) -> Path:
    """Merge one suite's headline medians into the trajectory file.

    One JSON line per (git sha, suite name); a rerun at the same sha
    replaces its previous line so the file tracks one point per commit
    rather than accumulating noise.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / filename
    line = _trajectory_line(payload)
    kept: List[str] = []
    if path.exists():
        for raw in path.read_text().splitlines():
            if not raw.strip():
                continue
            try:
                existing = json.loads(raw)
            except json.JSONDecodeError:
                kept.append(raw)  # preserve unparseable lines verbatim
                continue
            if (
                existing.get("git_sha") == line["git_sha"]
                and existing.get("name") == line["name"]
            ):
                continue
            kept.append(raw)
    kept.append(json.dumps(line, sort_keys=True))
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text("\n".join(kept) + "\n")
    tmp.replace(path)
    return path


def load_bench_payloads(directory: Path) -> Dict[str, Dict[str, object]]:
    """All ``BENCH_*.json`` payloads in ``directory``, keyed by suite name.

    Raises :class:`PerfError` for unreadable or schema-invalid files —
    a corrupt baseline should fail the gate loudly, not silently pass.
    """
    directory = Path(directory)
    payloads: Dict[str, Dict[str, object]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise PerfError(f"{path}: unreadable bench payload: {exc}")
        problems = validate_perf_payload(payload)
        if problems:
            raise PerfError(
                f"{path}: invalid bench payload: {'; '.join(problems[:3])}"
            )
        payloads[payload["name"]] = payload
    return payloads

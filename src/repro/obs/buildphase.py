"""Build-phase observability: where index construction spends its time.

Two complementary views, both cheap enough to leave on:

* :class:`BuildPhaseTracker` wraps the *coarse* pipeline steps the CLI
  drives (load graph → build → pack → serialize) and annotates each
  with wall time, peak-RSS delta, and — when tracing is enabled — the
  ``tracemalloc`` net-allocation delta.
* :func:`phase_breakdown` folds the *fine* span stream the builders
  already emit (``partition.balanced_cut``, ``ctls.build.labels``,
  ``ctls.build.shortcuts``, …) into the canonical pipeline phases, so
  ``--progress`` output and the embedded ``build_info`` header agree on
  one vocabulary.

The resulting ``build_info`` dict (:func:`make_build_info`) travels in
the v1/v3 index headers: ``repro-spc stats`` and the server's
``/stats`` endpoint can then answer "how was the index that is serving
right now built, and at what cost?".
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.obs.perf import capture_environment
from repro.obs.tracing import SpanEvent

__all__ = [
    "BuildPhaseTracker",
    "PhaseStat",
    "ProgressPrinter",
    "make_build_info",
    "peak_rss_bytes",
    "phase_breakdown",
]

#: Fine span name → canonical pipeline phase.  Spans not listed here
#: (per-node envelopes, SSSPC internals) are already counted inside a
#: listed ancestor and must not be double-booked.
_PHASE_OF_SPAN: Dict[str, str] = {
    "partition.balanced_cut": "partition",
    "ctls.build.labels": "labels",
    "ctl.build.labels": "labels",
    "tl.build.labels": "labels",
    "ctls.build.shortcuts": "spc_graph",
    "ctls.build.pack": "pack",
    "tl.build.decomposition": "decomposition",
    "tl.build.lca": "lca",
}

#: Presentation order of the canonical phases.
PHASE_ORDER = (
    "partition",
    "decomposition",
    "labels",
    "spc_graph",
    "lca",
    "pack",
    "serialize",
)


def peak_rss_bytes() -> Optional[int]:
    """The process's peak resident set in bytes, or ``None`` off-POSIX.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise
    to bytes.  This is a *high-water mark*: per-phase deltas are only
    nonzero for the phase that pushed the peak, which is exactly the
    phase a memory investigation cares about.
    """
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


@dataclass
class PhaseStat:
    """One completed coarse phase."""

    name: str
    seconds: float
    rss_delta_bytes: Optional[int] = None
    alloc_delta_bytes: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "seconds": round(self.seconds, 6),
        }
        if self.rss_delta_bytes is not None:
            data["rss_delta_bytes"] = self.rss_delta_bytes
        if self.alloc_delta_bytes is not None:
            data["alloc_delta_bytes"] = self.alloc_delta_bytes
        if self.attrs:
            data.update(self.attrs)
        return data


class BuildPhaseTracker:
    """Times coarse phases and reports memory movement per phase.

    ``progress`` (when given) receives one formatted line as each phase
    completes — the live half of ``repro-spc build --progress``.
    ``trace_allocations=True`` turns on :mod:`tracemalloc` for the
    tracker's lifetime (noticeable slowdown, precise numbers); without
    it only the free peak-RSS high-water readings are taken.
    """

    def __init__(
        self,
        progress: Optional[Callable[[str], None]] = None,
        *,
        trace_allocations: bool = False,
    ) -> None:
        self.progress = progress
        self.phases: List[PhaseStat] = []
        self._trace_allocations = trace_allocations
        self._owns_tracemalloc = False
        if trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        self._t0 = time.perf_counter()

    def close(self) -> None:
        """Stop tracemalloc if this tracker started it."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False

    @contextmanager
    def phase(self, name: str, **attrs: object):
        """Time one phase; yields the mutable ``attrs`` dict."""
        rss0 = peak_rss_bytes()
        alloc0 = (
            tracemalloc.get_traced_memory()[0]
            if tracemalloc.is_tracing()
            else None
        )
        start = time.perf_counter()
        try:
            yield attrs
        finally:
            seconds = time.perf_counter() - start
            rss1 = peak_rss_bytes()
            alloc1 = (
                tracemalloc.get_traced_memory()[0]
                if tracemalloc.is_tracing()
                else None
            )
            stat = PhaseStat(
                name=name,
                seconds=seconds,
                rss_delta_bytes=(
                    rss1 - rss0 if rss0 is not None and rss1 is not None
                    else None
                ),
                alloc_delta_bytes=(
                    alloc1 - alloc0
                    if alloc0 is not None and alloc1 is not None
                    else None
                ),
                attrs=dict(attrs),
            )
            self.phases.append(stat)
            if self.progress is not None:
                self.progress(self.format_line(stat))

    @property
    def total_seconds(self) -> float:
        return time.perf_counter() - self._t0

    @staticmethod
    def format_line(stat: PhaseStat) -> str:
        bits = [f"[build] {stat.name:<12} {stat.seconds:8.3f}s"]
        if stat.rss_delta_bytes:
            bits.append(f"rss +{stat.rss_delta_bytes / 1e6:.1f} MB")
        if stat.alloc_delta_bytes:
            bits.append(f"alloc {stat.alloc_delta_bytes / 1e6:+.1f} MB")
        for key, value in stat.attrs.items():
            bits.append(f"{key}={value}")
        return "  ".join(bits)

    def summary(self) -> List[Dict[str, object]]:
        return [stat.to_dict() for stat in self.phases]


class ProgressPrinter:
    """Throttled per-node progress line for ``build --progress``.

    The builder invokes the callback once per cut-tree node — thousands
    of times on a real graph — so the printer drops updates closer
    together than ``min_interval_s`` and always prints the final state.
    """

    def __init__(
        self,
        write: Callable[[str], None],
        *,
        min_interval_s: float = 0.5,
    ) -> None:
        self._write = write
        self._min_interval_s = min_interval_s
        # None until the first update: the first line always prints
        # (``perf_counter`` has an arbitrary origin, so comparing it
        # against 0.0 would make "does the first update print" depend
        # on host uptime).
        self._last: Optional[float] = None
        self._latest: Optional[Dict[str, object]] = None

    def __call__(self, state: Dict[str, object]) -> None:
        self._latest = state
        now = time.perf_counter()
        if (
            self._last is not None
            and now - self._last < self._min_interval_s
        ):
            return
        self._last = now
        self._emit(state)
        self._latest = None  # printed: finish() need not repeat it

    def _emit(self, state: Dict[str, object]) -> None:
        self._write(
            "[build] node {nodes:>5}  depth {depth:>3}  cut {cut:>4}  "
            "labels {labels:>9}  {elapsed:7.1f}s".format(**state)
        )

    def finish(self) -> None:
        """Print the final state even if the throttle just fired."""
        if self._latest is not None:
            self._emit(self._latest)
            self._latest = None


def phase_breakdown(events: Iterable[SpanEvent]) -> Dict[str, Dict[str, object]]:
    """Fold fine builder spans into canonical pipeline phases.

    Returns ``{phase: {seconds, count}}`` in :data:`PHASE_ORDER` order,
    phases that never ran omitted.
    """
    totals: Dict[str, Dict[str, object]] = {}
    for event in events:
        phase = _PHASE_OF_SPAN.get(event.name)
        if phase is None:
            continue
        entry = totals.setdefault(phase, {"seconds": 0.0, "count": 0})
        entry["seconds"] += event.duration
        entry["count"] += 1
    ordered = {
        phase: {
            "seconds": round(totals[phase]["seconds"], 6),
            "count": totals[phase]["count"],
        }
        for phase in PHASE_ORDER
        if phase in totals
    }
    # Preserve anything mapped but not in the canonical order (future
    # builders) rather than silently dropping it.
    for phase, entry in totals.items():
        ordered.setdefault(
            phase,
            {"seconds": round(entry["seconds"], 6), "count": entry["count"]},
        )
    return ordered


def make_build_info(
    *,
    algorithm: str,
    build_seconds: float,
    label_entries: Optional[int] = None,
    phases: Optional[Dict[str, Dict[str, object]]] = None,
    coarse: Optional[List[Dict[str, object]]] = None,
    extras: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The provenance dict embedded in index headers.

    Captures enough to correlate a BENCH record with the exact index
    that served it: what was built, when, where, how long each phase
    took, and how fast labels were produced.
    """
    env = capture_environment()
    info: Dict[str, object] = {
        "algorithm": algorithm,
        "built_at": env["date"],
        "git_sha": env["git_sha"],
        "host": env["host"],
        "python": env["python"],
        "build_seconds": round(build_seconds, 6),
    }
    if label_entries is not None:
        info["label_entries"] = label_entries
        if build_seconds > 0:
            info["labels_per_second"] = round(label_entries / build_seconds, 1)
    rss = peak_rss_bytes()
    if rss is not None:
        info["peak_rss_bytes"] = rss
    if phases:
        info["phases"] = phases
    if coarse:
        info["steps"] = coarse
    if extras:
        info.update(extras)
    return info

"""A stdlib wall-clock sampling profiler for live processes.

A daemon thread wakes up every ``interval_s`` seconds, snapshots every
thread's Python stack via :func:`sys._current_frames`, and aggregates
the stacks into counts.  Nothing is instrumented and nothing is traced
per-call, so attaching to a hot server perturbs it by well under 5% —
the serving benchmark asserts exactly that.

Two export formats:

* :meth:`SamplingProfiler.collapsed` — Brendan Gregg's collapsed-stack
  text (``thread;outer;...;leaf count`` per line), which
  ``flamegraph.pl`` and https://speedscope.app consume directly.
* :meth:`SamplingProfiler.chrome_trace` — a Chrome trace-event payload
  (one complete event per distinct stack, duration = samples x
  interval), loadable in Perfetto and checked by the same
  :func:`~repro.obs.tracing.validate_chrome_trace` the span exporter
  uses.

The sampler sees the world in ticks: a function that holds the GIL for
30% of wall time owns ~30% of samples.  C extensions that release the
GIL (the numpy ``scan_batch`` kernel) are attributed to the Python
frame that called them, which is exactly the attribution a flamegraph
reader wants.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ReproError
from repro.obs.tracing import CLOCK_EPOCH

__all__ = ["ProfilerError", "SamplingProfiler", "profile_for"]

#: Default sampling period: 10 ms (100 Hz, py-spy's default) resolves
#: hot paths in a few seconds while the sampling work stays negligible.
#: Deliberately *not* 5 ms: that resonates with CPython's 5 ms GIL
#: switch interval, and on a single-core host the beat pattern cost
#: the serving benchmark up to 25% throughput; at 10 ms the same load
#: measures under 5% (and usually under 2%).
DEFAULT_INTERVAL_S = 0.010

#: Frames deeper than this are truncated (defensive: recursive code).
MAX_STACK_DEPTH = 128


class ProfilerError(ReproError):
    """The profiler was driven through an invalid transition."""


#: ``code object -> label`` memo.  The sampler walks the same code
#: objects thousands of times per capture; building ``Path(...).stem``
#: per visit costs more than the rest of the tick combined (visible on
#: single-core runners, where sampler CPU comes straight out of
#: serving throughput).  Keyed on the code object itself — hashable,
#: alive for as long as any frame can reference it.
_LABEL_CACHE: Dict[object, str] = {}


def _frame_label(frame) -> str:
    """``module.function`` for one frame, compact but unambiguous."""
    code = frame.f_code
    label = _LABEL_CACHE.get(code)
    if label is None:
        label = f"{Path(code.co_filename).stem}.{code.co_name}"
        _LABEL_CACHE[code] = label
    return label


def _stack_of(frame) -> Tuple[str, ...]:
    """The stack below ``frame`` as outermost-first labels."""
    labels: List[str] = []
    while frame is not None and len(labels) < MAX_STACK_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class SamplingProfiler:
    """Samples all threads' stacks on a timer; start/stop or ``with``.

    A profiler instance is single-shot: ``start`` → ``stop`` → read the
    results.  Restarting a stopped profiler raises — allocate a fresh
    one per capture so exports are never a blend of two windows.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        *,
        max_samples: int = 1_000_000,
    ) -> None:
        if interval_s <= 0:
            raise ProfilerError("interval_s must be > 0")
        if max_samples < 1:
            raise ProfilerError("max_samples must be >= 1")
        self.interval_s = interval_s
        self.max_samples = max_samples
        self._counts: Counter = Counter()
        self._thread_names: Dict[int, str] = {}
        self._sample_count = 0
        self._cpu_seconds = 0.0
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._started = False
        self._wall_seconds = 0.0
        self._epoch_offset_s = 0.0

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None or self._started:
            raise ProfilerError("profiler already started")
        self._started = True
        self._stop_event.clear()
        self._t0 = time.perf_counter()
        # Where this capture began on the process's shared span clock
        # (repro.obs.tracing.CLOCK_EPOCH) — chrome_trace() offsets its
        # events by this, so sampler frames land in the same time range
        # as recorder/collector spans in a merged viewer timeline.
        self._epoch_offset_s = self._t0 - CLOCK_EPOCH
        self._thread = threading.Thread(
            target=self._run, name="spc-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            raise ProfilerError("profiler is not running")
        self._stop_event.set()
        self._thread.join(timeout=5.0)
        self._wall_seconds = time.perf_counter() - self._t0
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        if self._thread is not None:
            self.stop()

    # -- the sampling loop --------------------------------------------

    def _run(self) -> None:
        own_ident = threading.get_ident()
        interval = self.interval_s
        names = self._thread_names
        counts = self._counts
        # Per-thread walked-stack memo: ``ident -> (leaf frame, its
        # f_back, stack tuple)``.  A blocked thread (socket reads, lock
        # waits — most threads of a server, most of the time) keeps the
        # same leaf frame between ticks, so its stack need not be
        # re-walked.  Holding the frame object pins its id, making the
        # identity test sound; comparing ``f_back`` too catches a
        # generator frame resumed from a different caller.  On a
        # single-core host this cuts sampler CPU severalfold, which
        # comes straight back as serving throughput.
        walked: Dict[int, Tuple[object, object, Tuple[str, ...]]] = {}
        while not self._stop_event.wait(interval):
            if self._sample_count >= self.max_samples:
                break
            tick_cpu0 = time.thread_time()
            frames = sys._current_frames()
            # Thread names are resolved lazily: ``threading.enumerate``
            # takes a lock and builds a list, so it only runs on ticks
            # that see a not-yet-named ident, not on every sample.
            if any(ident not in names for ident in frames):
                for thread in threading.enumerate():
                    if thread.ident is not None:
                        names[thread.ident] = thread.name
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                name = names.get(ident)
                if name is None:
                    name = names[ident] = f"thread-{ident}"
                memo = walked.get(ident)
                if (
                    memo is not None
                    and memo[0] is frame
                    and memo[1] is frame.f_back
                ):
                    stack = memo[2]
                else:
                    stack = _stack_of(frame)
                    walked[ident] = (frame, frame.f_back, stack)
                counts[(name, stack)] += 1
            self._sample_count += 1
            self._cpu_seconds += time.thread_time() - tick_cpu0

    # -- results ------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    @property
    def sample_count(self) -> int:
        """Timer ticks taken (each tick samples every thread once)."""
        return self._sample_count

    @property
    def wall_seconds(self) -> float:
        """The captured window's wall-clock length (set by ``stop``)."""
        return self._wall_seconds

    @property
    def cpu_seconds(self) -> float:
        """CPU the sampling loop itself consumed (self-accounted).

        The profiler's true cost to the profiled process: on a
        saturated core every CPU second the sampler burns is a CPU
        second the application did not get, so
        ``cpu_seconds / window CPU`` *is* the throughput overhead —
        and unlike an A/B wall-clock comparison it is free of
        scheduler noise.  Accounting costs two ``thread_time`` calls
        per tick, well under 1% of a tick's work.
        """
        return self._cpu_seconds

    def stack_counts(self) -> Dict[Tuple[str, Tuple[str, ...]], int]:
        """Raw ``(thread name, stack) -> samples`` aggregation."""
        return dict(self._counts)

    def collapsed(self) -> str:
        """Collapsed-stack text: ``thread;outer;...;leaf count`` lines."""
        lines = []
        for (name, stack), count in sorted(
            self._counts.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            frames = ";".join((name.replace(";", "_"),) + stack)
            lines.append(f"{frames} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    @property
    def epoch_offset_s(self) -> float:
        """Capture start on the shared span clock (CLOCK_EPOCH base)."""
        return self._epoch_offset_s

    def chrome_trace(self) -> dict:
        """Chrome trace-event payload: one complete event per stack.

        Events are laid end-to-end per thread (sampled time, not real
        time): the viewer shows each stack's share of the window.  The
        per-thread lanes start at :attr:`epoch_offset_s` — the capture's
        position on the shared span clock — so sampler frames and span
        events line up in one merged viewer timeline instead of
        rendering in disjoint time ranges.
        """
        pid = os.getpid()
        tids = {
            name: tid
            for tid, name in enumerate(
                sorted({name for name, _ in self._counts}), start=1
            )
        }
        base_us = max(0.0, self._epoch_offset_s) * 1e6
        cursors = {name: base_us for name in tids}
        events = []
        for (name, stack), count in sorted(
            self._counts.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            duration_us = count * self.interval_s * 1e6
            events.append(
                {
                    "name": stack[-1] if stack else "(idle)",
                    "cat": "sample",
                    "ph": "X",
                    "ts": round(cursors[name], 3),
                    "dur": round(duration_us, 3),
                    "pid": pid,
                    "tid": tids[name],
                    "args": {
                        "thread": name,
                        "samples": count,
                        "stack": ";".join(stack),
                    },
                }
            )
            cursors[name] += duration_us
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def write_collapsed(self, path: Union[str, Path]) -> Path:
        """Write the collapsed-stack text to ``path``."""
        path = Path(path)
        path.write_text(self.collapsed())
        return path


def profile_for(
    seconds: float, *, interval_s: float = DEFAULT_INTERVAL_S
) -> SamplingProfiler:
    """Block for ``seconds`` while sampling; returns the stopped profiler."""
    if seconds <= 0:
        raise ProfilerError("seconds must be > 0")
    profiler = SamplingProfiler(interval_s=interval_s)
    profiler.start()
    time.sleep(seconds)
    profiler.stop()
    return profiler

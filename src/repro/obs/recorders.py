"""The metrics/trace recorder and its no-op twin.

A :class:`Recorder` owns the metric instruments and the span buffer; a
:class:`NullRecorder` exposes the same surface as pure no-ops, so hot
paths call ``rec.incr(...)`` unconditionally and pay nothing when
observability is off.  Recorders can *forward*: a build-scoped recorder
created while the global recorder is configured replays every event
into it, so one trace captures a whole CLI run.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_SECONDS,
    Counter,
    Gauge,
    Histogram,
    Number,
)
from repro.obs.tracing import CLOCK_EPOCH, SpanEvent, span_summary

#: All recorders in a process share one time origin — the same
#: :data:`repro.obs.tracing.CLOCK_EPOCH` the traced-span collector and
#: the sampling profiler use — so events forwarded between recorders
#: (and merged Chrome traces mixing spans with sampler frames) stay on
#: a single consistent timeline.
_EPOCH = CLOCK_EPOCH


def default_boundaries(name: str):
    """Histogram boundaries inferred from the metric name."""
    if name.endswith("_seconds"):
        return LATENCY_BUCKETS_SECONDS
    return COUNT_BUCKETS


class _NullSpan:
    """Reusable no-op context manager for spans and timers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        """No-op attribute update (parity with :class:`_Span`)."""


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """A recorder that records nothing; every method is a no-op."""

    __slots__ = ()

    def incr(self, name: str, value: Number = 1) -> None:
        pass

    def gauge(self, name: str, value: Number) -> None:
        pass

    def gauge_max(self, name: str, value: Number) -> None:
        pass

    def observe(self, name: str, value: Number, *, boundaries=None) -> None:
        pass

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def timer(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def counter_value(self, name: str) -> Number:
        return 0

    def gauge_value(self, name: str) -> Number:
        return 0

    def histogram(self, name: str) -> None:
        return None

    @property
    def trace_events(self) -> tuple:
        return ()

    def metrics_snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def span_summary(self) -> dict:
        return {}

    def _record_event(self, event: SpanEvent) -> None:
        pass


NULL_RECORDER = NullRecorder()


class _Span:
    """A live span; records a :class:`SpanEvent` on exit."""

    __slots__ = ("_recorder", "name", "attrs", "_start")

    def __init__(self, recorder: "Recorder", name: str, attrs: dict) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)

    def __exit__(self, *exc_info) -> bool:
        now = time.perf_counter()
        self._recorder._record_event(
            SpanEvent(self.name, self._start - _EPOCH, now - self._start,
                      self.attrs)
        )
        return False


class _Timer:
    """Context manager observing its elapsed seconds into a histogram."""

    __slots__ = ("_recorder", "name", "_start")

    def __init__(self, recorder: "Recorder", name: str) -> None:
        self._recorder = recorder
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._recorder.observe(
            self.name, time.perf_counter() - self._start
        )
        return False


class Recorder:
    """Process-local registry of counters, gauges, histograms, and spans."""

    def __init__(self, *, forward_to: Optional["Recorder"] = None) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.events: List[SpanEvent] = []
        self._forward = forward_to

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def incr(self, name: str, value: Number = 1) -> None:
        """Increase counter ``name`` by ``value`` (creating it at 0)."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        counter.incr(value)
        if self._forward is not None:
            self._forward.incr(name, value)

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value``."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.set(value)
        if self._forward is not None:
            self._forward.gauge(name, value)

    def gauge_max(self, name: str, value: Number) -> None:
        """Raise gauge ``name`` to ``value`` if it is larger."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.update_max(value)
        if self._forward is not None:
            self._forward.gauge_max(name, value)

    def observe(self, name: str, value: Number, *, boundaries=None) -> None:
        """Record ``value`` into histogram ``name``.

        The histogram is created on first use with ``boundaries`` (or
        name-derived defaults: latency decades for ``*_seconds`` names,
        count decades otherwise).
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(
                boundaries if boundaries is not None
                else default_boundaries(name)
            )
        histogram.observe(value)
        if self._forward is not None:
            self._forward.observe(name, value, boundaries=boundaries)

    def span(self, name: str, **attrs) -> _Span:
        """A timed section; the event is recorded when the span exits."""
        return _Span(self, name, attrs)

    def timer(self, name: str) -> _Timer:
        """Time a section into histogram ``name`` (no trace event)."""
        return _Timer(self, name)

    def _record_event(self, event: SpanEvent) -> None:
        self.events.append(event)
        if self._forward is not None:
            self._forward._record_event(event)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> Number:
        """Current value of counter ``name`` (0 when never incremented)."""
        counter = self.counters.get(name)
        return counter.value if counter is not None else 0

    def gauge_value(self, name: str) -> Number:
        """Current value of gauge ``name`` (0 when never set)."""
        gauge = self.gauges.get(name)
        return gauge.value if gauge is not None else 0

    def histogram(self, name: str) -> Optional[Histogram]:
        """Histogram ``name``, or ``None`` if nothing was observed."""
        return self.histograms.get(name)

    @property
    def trace_events(self) -> List[SpanEvent]:
        """All completed span events in completion order."""
        return self.events

    def metrics_snapshot(self) -> dict:
        """A JSON-friendly dump of every instrument."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: h.snapshot() for k, h in sorted(self.histograms.items())
            },
        }

    def span_summary(self) -> dict:
        """Flat per-name aggregation of the recorded spans."""
        return span_summary(self.events)

"""Span events, Chrome trace-event export, and flat span summaries.

The export format is the Chrome trace-event JSON object form —
``{"traceEvents": [...]}`` with complete (``"ph": "X"``) events — which
both ``chrome://tracing`` and https://ui.perfetto.dev load directly.
Nesting in the viewer comes from time containment on the same
``pid``/``tid``, so spans need no explicit parent links.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Union

TRACE_CATEGORY = "repro"


@dataclass
class SpanEvent:
    """One completed span: a named, timed section with attributes.

    ``start`` is seconds since the recorder epoch (a process-local
    ``perf_counter`` origin); ``duration`` is seconds.
    """

    name: str
    start: float
    duration: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """``start + duration`` in epoch seconds."""
        return self.start + self.duration


def chrome_trace_payload(
    events: Iterable[SpanEvent], *, pid: int = None
) -> dict:
    """The Chrome trace-event JSON object for ``events``."""
    if pid is None:
        pid = os.getpid()
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [
            {
                "name": event.name,
                "cat": TRACE_CATEGORY,
                "ph": "X",
                "ts": round(event.start * 1e6, 3),
                "dur": round(event.duration * 1e6, 3),
                "pid": pid,
                "tid": 1,
                "args": dict(event.attrs),
            }
            for event in events
        ],
    }


def write_chrome_trace(
    path: Union[str, Path], events: Iterable[SpanEvent]
) -> None:
    """Write ``events`` to ``path`` as Chrome trace-event JSON."""
    with open(path, "w") as handle:
        json.dump(chrome_trace_payload(events), handle)


def span_summary(events: Iterable[SpanEvent]) -> Dict[str, dict]:
    """Aggregate span timings per name (the flat JSON summary).

    Returns ``{name: {count, total_seconds, min_seconds, max_seconds}}``
    with names in first-seen order.
    """
    summary: Dict[str, dict] = {}
    for event in events:
        entry = summary.get(event.name)
        if entry is None:
            summary[event.name] = {
                "count": 1,
                "total_seconds": event.duration,
                "min_seconds": event.duration,
                "max_seconds": event.duration,
            }
        else:
            entry["count"] += 1
            entry["total_seconds"] += event.duration
            entry["min_seconds"] = min(entry["min_seconds"], event.duration)
            entry["max_seconds"] = max(entry["max_seconds"], event.duration)
    return summary


def validate_chrome_trace(payload: object) -> List[str]:
    """Schema-check a Chrome trace payload; returns a list of problems.

    An empty list means the payload is a well-formed object-format trace
    of complete events (the only form this library emits).
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            errors.append(f"{where}: missing 'name'")
        if event.get("ph") != "X":
            errors.append(f"{where}: 'ph' is not 'X'")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"{where}: '{key}' is not a non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: '{key}' is not an integer")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: 'args' is not an object")
    return errors

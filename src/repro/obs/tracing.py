"""Span events, trace contexts, Chrome trace-event export, and merges.

The export format is the Chrome trace-event JSON object form —
``{"traceEvents": [...]}`` with complete (``"ph": "X"``) events — which
both ``chrome://tracing`` and https://ui.perfetto.dev load directly.
Nesting in the viewer comes from time containment on the same
``pid``/``tid``; distributed captures additionally carry explicit
``trace_id``/``span_id``/``parent_id`` args so a request can be
followed across processes.

Three layers live here:

* **Process-local spans** — :class:`SpanEvent` plus
  :func:`chrome_trace_payload`/:func:`write_chrome_trace`, what the
  build recorder and ``repro-spc build --trace`` emit.
* **Distributed trace context** — :class:`TraceContext` implements the
  W3C ``traceparent`` shape (128-bit trace id, 64-bit parent span id,
  sampled flag) so the fleet router can hand a request's identity to a
  worker over one HTTP header.
* **Cross-process capture** — each process keeps traced spans in a
  bounded :class:`SpanCollector` ring; :func:`merge_trace_fragments`
  aligns fragments from many processes onto one timeline.  Every
  producer timestamps against :data:`CLOCK_EPOCH` (one
  ``perf_counter`` origin per process) and a fragment reports the wall
  time of that origin (:func:`wall_clock_anchor`), which is the whole
  clock handshake: processes on one host share ``time.time()``, so
  shifting each fragment by its anchor puts all spans on a common
  timeline without any readiness-protocol changes.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

TRACE_CATEGORY = "repro"

#: Process-wide monotonic clock origin.  Every span producer in this
#: process — recorder spans, the traced-span collector, the sampling
#: profiler — measures ``perf_counter() - CLOCK_EPOCH``, so their
#: events line up on one timeline in a merged Chrome trace.
CLOCK_EPOCH = time.perf_counter()

#: The hop header that carries a :class:`TraceContext` (W3C name).
TRACEPARENT_HEADER = "traceparent"

_TRACE_ID_LEN = 32  # 128-bit trace id, lowercase hex
_SPAN_ID_LEN = 16  # 64-bit span id, lowercase hex
_HEX = set("0123456789abcdef")


def wall_clock_anchor() -> float:
    """Unix wall time corresponding to this process's :data:`CLOCK_EPOCH`.

    Fragments from different processes are aligned by their anchors at
    merge time (see :func:`merge_trace_fragments`); computing the
    anchor fresh per capture keeps it immune to NTP steps that happened
    since process start.
    """
    return time.time() - (time.perf_counter() - CLOCK_EPOCH)


def new_span_id() -> str:
    """A fresh random 64-bit span id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


def _is_hex(value: str, length: int) -> bool:
    return len(value) == length and all(c in _HEX for c in value)


@dataclass(frozen=True)
class TraceContext:
    """One hop of a distributed trace: ``(trace id, span id, sampled)``.

    ``span_id`` names the *current* span — the one a downstream hop
    should use as its parent.  The wire form is the W3C
    ``traceparent`` header: ``00-<32 hex>-<16 hex>-<2 hex flags>``.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def generate(cls, sampled: bool = True) -> "TraceContext":
        """A fresh root context with random trace and span ids."""
        return cls(os.urandom(16).hex(), new_span_id(), sampled)

    def child(self) -> "TraceContext":
        """Same trace, new span id (one hop down)."""
        return TraceContext(self.trace_id, new_span_id(), self.sampled)

    def to_header(self) -> str:
        """The ``traceparent`` header value for this context."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"

    @classmethod
    def parse(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` value; ``None`` if malformed.

        Strict per the W3C grammar: four dash-separated fields, a known
        (non-``ff``) two-hex-digit version, non-zero lowercase-hex ids.
        A malformed header is treated as absent, never as an error —
        tracing must not break request handling.
        """
        if not header:
            return None
        parts = header.strip().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, flags = parts
        if not _is_hex(version, 2) or version == "ff":
            return None
        if not _is_hex(trace_id, _TRACE_ID_LEN) or set(trace_id) == {"0"}:
            return None
        if not _is_hex(span_id, _SPAN_ID_LEN) or set(span_id) == {"0"}:
            return None
        if not _is_hex(flags, 2):
            return None
        return cls(trace_id, span_id, bool(int(flags, 16) & 0x01))


class SpanCollector:
    """Per-process bounded ring buffer of trace-correlated spans.

    Unlike the recorder's span list (which grows without bound and has
    no ids), the collector keeps the most recent ``capacity`` spans
    with their trace/span/parent ids, ready to be shipped as one
    *fragment* of a distributed capture.  Appends are O(1) and
    lock-guarded — the server records from both the event loop and the
    scan-executor thread.
    """

    def __init__(self, capacity: int = 4096, *, role: str = "server"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.role = role
        self.recorded = 0
        self._spans: deque = deque(maxlen=capacity)
        self._lock = Lock()

    def __len__(self) -> int:
        return len(self._spans)

    def record(
        self,
        name: str,
        *,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str] = None,
        start: float,
        duration: float,
        attrs: Optional[dict] = None,
        tid: int = 1,
    ) -> None:
        """Record one completed span.

        ``start`` is a raw ``time.perf_counter()`` reading (the natural
        thing for callers to have on hand); it is re-based onto
        :data:`CLOCK_EPOCH` here so fragments are self-describing.
        """
        span = {
            "name": name,
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "start": start - CLOCK_EPOCH,
            "duration": duration,
            "tid": tid,
            "attrs": dict(attrs) if attrs else {},
        }
        with self._lock:
            self._spans.append(span)
            self.recorded += 1

    def fragment(self, *, clear: bool = False) -> dict:
        """This process's share of a distributed capture (JSON-ready)."""
        with self._lock:
            spans = list(self._spans)
            if clear:
                self._spans.clear()
        return {
            "pid": os.getpid(),
            "role": self.role,
            "wall_at_epoch": wall_clock_anchor(),
            "capacity": self.capacity,
            "recorded": self.recorded,
            "spans": spans,
        }


@dataclass
class SpanEvent:
    """One completed span: a named, timed section with attributes.

    ``start`` is seconds since the recorder epoch (the process-local
    :data:`CLOCK_EPOCH`); ``duration`` is seconds.
    """

    name: str
    start: float
    duration: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """``start + duration`` in epoch seconds."""
        return self.start + self.duration


def chrome_trace_payload(
    events: Iterable[SpanEvent], *, pid: int = None
) -> dict:
    """The Chrome trace-event JSON object for ``events``."""
    if pid is None:
        pid = os.getpid()
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [
            {
                "name": event.name,
                "cat": TRACE_CATEGORY,
                "ph": "X",
                "ts": round(event.start * 1e6, 3),
                "dur": round(event.duration * 1e6, 3),
                "pid": pid,
                "tid": 1,
                "args": dict(event.attrs),
            }
            for event in events
        ],
    }


def write_chrome_trace(
    path: Union[str, Path], events: Iterable[SpanEvent]
) -> None:
    """Write ``events`` to ``path`` as Chrome trace-event JSON."""
    with open(path, "w") as handle:
        json.dump(chrome_trace_payload(events), handle)


def merge_trace_fragments(fragments: Sequence[dict]) -> dict:
    """Merge per-process capture fragments into one Chrome trace.

    Each fragment is a :meth:`SpanCollector.fragment` dict.  Spans are
    shifted onto a shared timeline: fragment ``F``'s span at epoch
    offset ``s`` lands at ``(F.wall_at_epoch - base) + s`` seconds,
    where ``base`` is the earliest anchor across fragments — the clock
    handshake described in the module docstring.  Each process gets a
    ``process_name`` metadata event naming its role (``router``,
    ``worker-0``, ...), and every span's args carry its
    ``trace_id``/``span_id``/``parent_id`` so cross-process links
    survive the merge explicitly, not just by time containment.
    """
    frags = [
        f
        for f in fragments
        if isinstance(f, dict) and isinstance(f.get("wall_at_epoch"), (int, float))
    ]
    if not frags:
        return {"displayTimeUnit": "ms", "traceEvents": []}
    base = min(float(f["wall_at_epoch"]) for f in frags)
    events: List[dict] = []
    for frag in frags:
        pid = int(frag.get("pid", 0))
        offset = float(frag["wall_at_epoch"]) - base
        role = str(frag.get("role") or f"pid-{pid}")
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": role},
            }
        )
        for span in frag.get("spans", ()):
            if not isinstance(span, dict):
                continue
            args = dict(span.get("attrs") or {})
            args["trace_id"] = span.get("trace_id")
            args["span_id"] = span.get("span_id")
            if span.get("parent_id"):
                args["parent_id"] = span["parent_id"]
            events.append(
                {
                    "name": str(span.get("name", "span")),
                    "cat": TRACE_CATEGORY,
                    "ph": "X",
                    "ts": round(max(0.0, offset + float(span["start"])) * 1e6, 3),
                    "dur": round(max(0.0, float(span["duration"])) * 1e6, 3),
                    "pid": pid,
                    "tid": int(span.get("tid", 1)),
                    "args": args,
                }
            )
    events.sort(key=lambda e: (e.get("ts", -1.0), e.get("pid", 0)))
    return {"displayTimeUnit": "ms", "traceEvents": events}


def cross_process_links(payload: dict) -> List[Tuple[dict, dict]]:
    """``(parent event, child event)`` pairs that span two processes.

    Resolved through the explicit span ids in event args, so a merged
    capture can be *asserted* to link (the CI trace-smoke bar), not
    just eyeballed in a viewer.
    """
    events = [
        e
        for e in payload.get("traceEvents", [])
        if isinstance(e, dict) and e.get("ph") == "X"
    ]
    by_id: Dict[Tuple[str, str], dict] = {}
    for event in events:
        args = event.get("args") or {}
        trace_id, span_id = args.get("trace_id"), args.get("span_id")
        if trace_id and span_id:
            by_id[(trace_id, span_id)] = event
    links = []
    for event in events:
        args = event.get("args") or {}
        parent_id = args.get("parent_id")
        if not parent_id:
            continue
        parent = by_id.get((args.get("trace_id"), parent_id))
        if parent is not None and parent.get("pid") != event.get("pid"):
            links.append((parent, event))
    return links


def span_summary(events: Iterable[SpanEvent]) -> Dict[str, dict]:
    """Aggregate span timings per name (the flat JSON summary).

    Returns ``{name: {count, total_seconds, min_seconds, max_seconds}}``
    with names in first-seen order.
    """
    summary: Dict[str, dict] = {}
    for event in events:
        entry = summary.get(event.name)
        if entry is None:
            summary[event.name] = {
                "count": 1,
                "total_seconds": event.duration,
                "min_seconds": event.duration,
                "max_seconds": event.duration,
            }
        else:
            entry["count"] += 1
            entry["total_seconds"] += event.duration
            entry["min_seconds"] = min(entry["min_seconds"], event.duration)
            entry["max_seconds"] = max(entry["max_seconds"], event.duration)
    return summary


def validate_chrome_trace(payload: object) -> List[str]:
    """Schema-check a Chrome trace payload; returns a list of problems.

    An empty list means the payload is a well-formed object-format
    trace of complete events, plus the ``process_name`` metadata
    (``"ph": "M"``) events that merged fleet captures label their
    processes with.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            errors.append(f"{where}: missing 'name'")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: 'args' is not an object")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: '{key}' is not an integer")
        if event.get("ph") == "M":
            continue  # metadata events carry no timing
        if event.get("ph") != "X":
            errors.append(f"{where}: 'ph' is not 'X'")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"{where}: '{key}' is not a non-negative number")
    return errors

"""Prometheus text exposition of a :meth:`Recorder.metrics_snapshot`.

The serving layer's ``/metrics`` endpoint historically returned the
recorder's JSON snapshot; a real scrape pipeline wants the `Prometheus
text format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
instead.  :func:`render_prometheus` translates a snapshot — the same
dict the JSON endpoint serves, so the two representations can never
drift — into exposition text:

* counters ``a.b.c`` → ``<ns>_a_b_c_total`` (``# TYPE ... counter``);
* gauges   ``a.b.c`` → ``<ns>_a_b_c`` (``# TYPE ... gauge``);
* histograms → ``<ns>_a_b_c_bucket{le="..."}`` cumulative series plus
  ``_sum`` and ``_count`` (``# TYPE ... histogram``), with the
  mandatory ``le="+Inf"`` bucket equal to ``_count``.

:func:`validate_prometheus_text` is the matching schema checker — an
empty problem list means scrape-clean.  It is used by the unit tests
and the CI serve-smoke job, the same validate-what-you-emit pairing as
``validate_chrome_trace`` for traces.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

__all__ = [
    "escape_label_value",
    "prometheus_name",
    "render_prometheus",
    "validate_prometheus_text",
]

#: Content type of the text exposition format (scrape responses).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def prometheus_name(name: str, *, namespace: str = "repro") -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    flat = _INVALID_CHARS.sub("_", name.replace(".", "_"))
    if namespace:
        flat = f"{namespace}_{flat}"
    if not flat or not _NAME_RE.match(flat):
        flat = f"_{flat}"
    return flat


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value) -> str:
    """A sample value as exposition text (``+Inf``/``NaN`` aware)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _bucket_upper_bound(label: str) -> float:
    """Upper bound of one snapshot bucket label (``"<= X"`` / ``"> X"``).

    The overflow bucket (``"> last"``) maps to ``+Inf`` — exactly the
    Prometheus convention for the final cumulative bucket.
    """
    text = label.strip()
    if text.startswith("<="):
        return float(text[2:])
    if text.startswith(">"):
        return math.inf
    raise ValueError(f"unrecognised bucket label {label!r}")


def _le_text(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else format(bound, "g")


def render_prometheus(
    snapshot: dict, *, namespace: str = "repro"
) -> str:
    """Render one metrics snapshot as Prometheus exposition text.

    ``snapshot`` is exactly what :meth:`Recorder.metrics_snapshot`
    returns (and what the JSON ``/metrics`` response carries), so the
    two content types always expose identical data.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        flat = prometheus_name(name, namespace=namespace) + "_total"
        lines.append(f"# HELP {flat} Counter {name!r} (repro.obs)")
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        flat = prometheus_name(name, namespace=namespace)
        lines.append(f"# HELP {flat} Gauge {name!r} (repro.obs)")
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format_value(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        flat = prometheus_name(name, namespace=namespace)
        lines.append(f"# HELP {flat} Histogram {name!r} (repro.obs)")
        lines.append(f"# TYPE {flat} histogram")
        cumulative = 0
        saw_inf = False
        for label, bucket_count in hist.get("buckets", {}).items():
            bound = _bucket_upper_bound(label)
            cumulative += bucket_count
            saw_inf = saw_inf or math.isinf(bound)
            lines.append(
                f'{flat}_bucket{{le="{_le_text(bound)}"}} {cumulative}'
            )
        count = hist.get("count", 0)
        if not saw_inf:
            lines.append(f'{flat}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{flat}_sum {_format_value(float(hist.get('sum', 0.0)))}")
        lines.append(f"{flat}_count {count}")
    return "\n".join(lines) + "\n"


def _parse_labels(raw: str) -> Optional[Dict[str, str]]:
    """Parse a ``{name="value",...}`` label block; ``None`` on error."""
    labels: Dict[str, str] = {}
    at = 0
    while at < len(raw):
        eq = raw.find("=", at)
        if eq < 0:
            return None
        name = raw[at:eq].strip().lstrip(",").strip()
        if not _LABEL_NAME_RE.match(name):
            return None
        if eq + 1 >= len(raw) or raw[eq + 1] != '"':
            return None
        # Scan the quoted value honoring backslash escapes.
        value_chars: List[str] = []
        i = eq + 2
        while i < len(raw):
            ch = raw[i]
            if ch == "\\":
                if i + 1 >= len(raw):
                    return None
                nxt = raw[i + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt)
                    or f"\\{nxt}"
                )
                i += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            i += 1
        else:
            return None
        if name in labels:
            return None
        labels[name] = "".join(value_chars)
        at = i + 1
    return labels


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$"
)


def _parse_value(text: str) -> Optional[float]:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def validate_prometheus_text(text: str) -> List[str]:
    """Schema-check exposition text; an empty list means clean.

    Checks, in exposition order: line and label syntax, metric names,
    every sample covered by a ``# TYPE`` declaration, no duplicate
    series, and for histograms: ``le`` labels parse, cumulative bucket
    counts are non-decreasing, the ``+Inf`` bucket exists and equals
    ``_count``, and ``_sum``/``_count`` are present.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    seen_series = set()
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for line_no, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) < 3 or fields[1] not in ("HELP", "TYPE"):
                problems.append(f"line {line_no}: malformed comment {line!r}")
                continue
            if fields[1] == "TYPE":
                if len(fields) < 4 or fields[3] not in _TYPES:
                    problems.append(
                        f"line {line_no}: bad TYPE declaration {line!r}"
                    )
                    continue
                if fields[2] in types:
                    problems.append(
                        f"line {line_no}: duplicate TYPE for {fields[2]}"
                    )
                types[fields[2]] = fields[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {line_no}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        raw_labels = match.group("labels")
        labels = _parse_labels(raw_labels) if raw_labels else {}
        if labels is None:
            problems.append(f"line {line_no}: bad label block {line!r}")
            continue
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(
                f"line {line_no}: bad sample value {match.group('value')!r}"
            )
            continue
        series = (name, tuple(sorted(labels.items())))
        if series in seen_series:
            problems.append(f"line {line_no}: duplicate series {series}")
        seen_series.add(series)
        samples.append((name, labels, value))

    # Tie every sample to a declared family.
    families: Dict[str, List[Tuple[str, Dict[str, str], float]]] = {}
    for name, labels, value in samples:
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family = base
                break
        if family not in types:
            problems.append(f"sample {name} has no # TYPE declaration")
            continue
        families.setdefault(family, []).append((name, labels, value))

    for family, declared in types.items():
        rows = families.get(family, [])
        if declared != "histogram":
            continue
        buckets: List[Tuple[float, float]] = []
        total_count = None
        total_sum = None
        for name, labels, value in rows:
            if name == f"{family}_bucket":
                le = labels.get("le")
                if le is None:
                    problems.append(f"{family}: bucket without le label")
                    continue
                bound = _parse_value(le)
                if bound is None:
                    problems.append(f"{family}: unparseable le {le!r}")
                    continue
                buckets.append((bound, value))
            elif name == f"{family}_count":
                total_count = value
            elif name == f"{family}_sum":
                total_sum = value
            else:
                problems.append(
                    f"{family}: unexpected histogram sample {name}"
                )
        if total_count is None:
            problems.append(f"{family}: missing _count")
        if total_sum is None:
            problems.append(f"{family}: missing _sum")
        if not any(math.isinf(bound) for bound, _ in buckets):
            problems.append(f"{family}: missing le=\"+Inf\" bucket")
        ordered = sorted(buckets, key=lambda item: item[0])
        if ordered != buckets:
            problems.append(f"{family}: buckets not in le order")
        last = None
        for bound, cumulative in ordered:
            if last is not None and cumulative < last:
                problems.append(
                    f"{family}: cumulative bucket counts decrease at "
                    f"le={_le_text(bound)}"
                )
            last = cumulative
        if (
            total_count is not None
            and ordered
            and math.isinf(ordered[-1][0])
            and ordered[-1][1] != total_count
        ):
            problems.append(
                f"{family}: +Inf bucket {ordered[-1][1]} != _count "
                f"{total_count}"
            )
    return problems

"""Rolling SLO windows: recent latency/error behavior, not lifetime.

The recorder's histograms accumulate forever — right for offline
profiling, wrong for "is the server healthy *now*".  :class:`SloWindow`
keeps a ring of per-second sub-windows over the last ``window_s``
seconds; each request lands in the current second's bucket (latency
histogram + outcome counters), and :meth:`snapshot` merges the live
seconds into p50/p95/p99 latency, error rate, shed rate, cache hit
rate, and queue-depth peak — the numbers the ``/stats`` endpoint
serves and ``repro-spc top`` renders.

:class:`SloPolicy` turns a snapshot into a readiness verdict: when the
window's p99 latency or error rate crosses the configured objective,
``/health`` flips to ``degraded`` (HTTP 503) so load balancers can
rotate the instance out before users notice.

Everything here is event-loop-local (one writer), so there are no
locks; the clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import LATENCY_BUCKETS_SECONDS, Histogram

__all__ = ["SloPolicy", "SloWindow"]


class _Second:
    """One second of request outcomes (a ring slot)."""

    __slots__ = (
        "epoch",
        "requests",
        "errors",
        "sheds",
        "cache_hits",
        "cache_lookups",
        "queue_depth_max",
        "latency",
    )

    def __init__(self, boundaries: Sequence[float]) -> None:
        self.epoch = -1
        self.latency = Histogram(boundaries)
        self._zero()

    def _zero(self) -> None:
        self.requests = 0
        self.errors = 0
        self.sheds = 0
        self.cache_hits = 0
        self.cache_lookups = 0
        self.queue_depth_max = 0

    def reset(self, epoch: int, boundaries: Sequence[float]) -> None:
        self.epoch = epoch
        self.latency = Histogram(boundaries)
        self._zero()


def _ms(seconds: Optional[float]) -> Optional[float]:
    if seconds is None or seconds != seconds:  # nan -> null in JSON
        return None
    return seconds * 1000.0


class SloWindow:
    """Sliding aggregate over the last ``window_s`` seconds of traffic."""

    def __init__(
        self,
        window_s: int = 30,
        *,
        boundaries: Sequence[float] = LATENCY_BUCKETS_SECONDS,
        clock=time.monotonic,
    ) -> None:
        if window_s < 1:
            raise ValueError(f"window_s must be >= 1, got {window_s}")
        self.window_s = window_s
        self._boundaries = tuple(boundaries)
        self._clock = clock
        self._ring = [_Second(self._boundaries) for _ in range(window_s)]
        self._current = self._ring[0]
        self._current_second = -1
        self.total_requests = 0

    def _bucket(self) -> _Second:
        # The common case — another request in the same second — skips
        # the ring arithmetic entirely; record() runs once per served
        # request, so this path is sized accordingly.
        second = int(self._clock())
        if second == self._current_second:
            return self._current
        slot = self._ring[second % self.window_s]
        if slot.epoch != second:
            slot.reset(second, self._boundaries)
        self._current_second = second
        self._current = slot
        return slot

    def record(
        self,
        latency_s: float,
        error: bool = False,
        shed: bool = False,
        cache_hit: Optional[bool] = None,
        queue_depth: int = 0,
    ) -> None:
        """Fold one finished request into the current second.

        Arguments may be passed positionally — the server's per-request
        call site does, to keep the hot path free of keyword parsing.
        """
        slot = self._bucket()
        slot.requests += 1
        slot.latency.observe(latency_s)
        if error:
            slot.errors += 1
        if shed:
            slot.sheds += 1
        if cache_hit is not None:
            slot.cache_lookups += 1
            if cache_hit:
                slot.cache_hits += 1
        if queue_depth > slot.queue_depth_max:
            slot.queue_depth_max = queue_depth
        self.total_requests += 1

    def _live_slots(self) -> List[_Second]:
        horizon = int(self._clock()) - self.window_s
        return [slot for slot in self._ring if slot.epoch > horizon]

    def merged_latency(self) -> Histogram:
        """One histogram of every latency inside the live window."""
        merged = Histogram(self._boundaries)
        for slot in self._live_slots():
            merged.merge(slot.latency)
        return merged

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly aggregate of the live window.

        Rate and percentile fields are ``None`` (JSON ``null``) when
        the window holds no samples to compute them from — never a
        made-up zero.
        """
        slots = self._live_slots()
        requests = sum(s.requests for s in slots)
        errors = sum(s.errors for s in slots)
        sheds = sum(s.sheds for s in slots)
        cache_hits = sum(s.cache_hits for s in slots)
        cache_lookups = sum(s.cache_lookups for s in slots)
        queue_depth_max = max(
            (s.queue_depth_max for s in slots), default=0
        )
        latency = self.merged_latency()
        return {
            "window_seconds": self.window_s,
            "requests": requests,
            "qps": requests / self.window_s,
            "errors": errors,
            "error_rate": errors / requests if requests else None,
            "sheds": sheds,
            "shed_rate": sheds / requests if requests else None,
            "cache_hit_rate": (
                cache_hits / cache_lookups if cache_lookups else None
            ),
            "queue_depth_max": queue_depth_max,
            "latency_ms": {
                "p50": _ms(latency.percentile(0.50)),
                "p95": _ms(latency.percentile(0.95)),
                "p99": _ms(latency.percentile(0.99)),
                "mean": _ms(latency.mean),
                "max": _ms(latency.max) if latency.count else None,
            },
        }


@dataclass(frozen=True)
class SloPolicy:
    """Latency/error objectives evaluated against a window snapshot.

    A threshold of 0 disables that objective; with both disabled the
    policy always reports ``ok``.  ``min_requests`` guards against
    flapping on a nearly idle window (one slow request out of two is
    not an incident).
    """

    p99_ms: float = 0.0
    max_error_rate: float = 0.0
    min_requests: int = 10

    @property
    def enabled(self) -> bool:
        return self.p99_ms > 0 or self.max_error_rate > 0

    def evaluate(self, snapshot: Dict) -> Tuple[str, List[str]]:
        """``("ok" | "degraded", [breach descriptions])``."""
        breaches: List[str] = []
        if not self.enabled or snapshot["requests"] < self.min_requests:
            return "ok", breaches
        p99 = snapshot["latency_ms"]["p99"]
        if self.p99_ms > 0 and p99 is not None and p99 > self.p99_ms:
            breaches.append(
                f"p99 latency {p99:.2f}ms exceeds {self.p99_ms:.2f}ms"
            )
        error_rate = snapshot["error_rate"]
        if (
            self.max_error_rate > 0
            and error_rate is not None
            and error_rate > self.max_error_rate
        ):
            breaches.append(
                f"error rate {error_rate:.4f} exceeds "
                f"{self.max_error_rate:.4f}"
            )
        return ("degraded" if breaches else "ok"), breaches

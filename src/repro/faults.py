"""Deterministic fault injection for the serving stack (``repro.faults``).

A :class:`FaultPlan` describes *which* failures to inject, *where*, and
*how often*, so the chaos test suite and the ``chaos-smoke`` CI job can
drive the real server through index corruption, scan-executor crashes,
slow scans, coalescer flush errors, and mid-response connection resets
— reproducibly.  Every site draws from its own seeded RNG, so a plan
with the same seed fires the same faults in the same order regardless
of what the other sites are doing.

Sites (each checked at exactly one place in the stack):

========================  ====================================================
``scan.fail``             :class:`FaultyIndex` raises :class:`InjectedFault`
                          from ``query``/``query_batch`` (an infrastructure
                          crash, *not* a :class:`~repro.exceptions.ReproError`
                          — the server must 500 the request, not 400 it).
``scan.slow``             :class:`FaultyIndex` sleeps ``delay_ms`` before
                          delegating (deadline and drain testing).
``flush.fail``            the coalescer's batch flush raises before the scan
                          (exercises isolate-and-retry).
``conn.reset``            the server aborts the TCP connection mid-response
                          (exercises client transport-error handling).
``index.load``            the server's hot-reload path fails validation
                          (exercises reload rollback).
``worker.kill``           a fleet worker SIGKILLs itself mid-request
                          (exercises router supervision and respawn).
``wal.torn_write``        the write-ahead log crashes mid-append, leaving a
                          torn final record on disk (exercises recovery's
                          torn-tail truncation).
========================  ====================================================

Plans parse from a compact spec (CLI flag or ``REPRO_FAULT_PLAN`` env
var)::

    scan.fail:0.1,conn.reset:0.05,scan.slow:0.02@250ms

Each fired fault is counted into the plan's recorder as
``faults.fired.<site>`` (and attempts as ``faults.checked.<site>``), so
``/metrics`` shows exactly how much chaos a run actually injected.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.exceptions import ReproError
from repro.obs import NULL_RECORDER

#: The injection sites a plan may name.
SITES = (
    "scan.fail",
    "scan.slow",
    "flush.fail",
    "conn.reset",
    "index.load",
    "worker.kill",
    "wal.torn_write",
)

#: Environment variables read by :meth:`FaultPlan.from_env`.
ENV_PLAN = "REPRO_FAULT_PLAN"
ENV_SEED = "REPRO_FAULT_SEED"


class InjectedFault(RuntimeError):
    """A failure fired by a :class:`FaultPlan`.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: injected
    faults model infrastructure crashes (a dead executor, a corrupt
    buffer), which the serving layer must treat as internal errors
    (HTTP 500 + circuit-breaker strikes), not as client mistakes.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site!r}")
        self.site = site


class FaultPlanError(ReproError):
    """A fault-plan spec string could not be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """One site's injection rule: fire with ``probability`` per check."""

    site: str
    probability: float
    #: Extra latency, for ``*.slow`` sites (milliseconds).
    delay_ms: float = 0.0
    #: Stop firing after this many hits (0 = unlimited).
    max_fires: int = 0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; "
                f"expected one of {', '.join(SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"{self.site}: probability {self.probability} not in [0, 1]"
            )
        if self.delay_ms < 0:
            raise FaultPlanError(f"{self.site}: delay_ms must be >= 0")
        if self.max_fires < 0:
            raise FaultPlanError(f"{self.site}: max_fires must be >= 0")


def _parse_one(part: str) -> FaultSpec:
    """``site:prob[@delay_ms][xN]`` -> FaultSpec."""
    site, sep, rest = part.partition(":")
    site = site.strip()
    if not sep or not rest:
        raise FaultPlanError(
            f"bad fault spec {part!r}; expected 'site:probability'"
        )
    max_fires = 0
    if "x" in rest:
        rest, _, fires = rest.rpartition("x")
        try:
            max_fires = int(fires)
        except ValueError:
            raise FaultPlanError(
                f"{site}: bad fire limit {fires!r}"
            ) from None
    delay_ms = 0.0
    if "@" in rest:
        rest, _, delay = rest.partition("@")
        delay = delay.strip()
        if delay.endswith("ms"):
            delay = delay[:-2]
        try:
            delay_ms = float(delay)
        except ValueError:
            raise FaultPlanError(f"{site}: bad delay {delay!r}") from None
    try:
        probability = float(rest)
    except ValueError:
        raise FaultPlanError(
            f"{site}: bad probability {rest!r}"
        ) from None
    return FaultSpec(site, probability, delay_ms, max_fires)


class FaultPlan:
    """A set of :class:`FaultSpec` rules with deterministic firing.

    Each site owns an independent ``random.Random`` seeded from
    ``(seed, site)``, so adding a rule for one site never shifts the
    fire sequence of another — a property the chaos tests rely on to
    stay reproducible as plans grow.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        *,
        seed: int = 0,
        recorder=NULL_RECORDER,
    ) -> None:
        self.seed = seed
        self.recorder = recorder
        self._specs: Dict[str, FaultSpec] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._fired: Dict[str, int] = {}
        for spec in specs:
            if spec.site in self._specs:
                raise FaultPlanError(f"duplicate fault site {spec.site!r}")
            self._specs[spec.site] = spec
            self._rngs[spec.site] = random.Random(f"{seed}:{spec.site}")
            self._fired[spec.site] = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, *, seed: int = 0, recorder=NULL_RECORDER):
        """Parse ``site:prob[@delay_ms][xN],...`` into a plan.

        An empty/whitespace spec yields an inactive plan (no sites).
        """
        specs = [
            _parse_one(part)
            for part in text.split(",")
            if part.strip()
        ]
        return cls(specs, seed=seed, recorder=recorder)

    @classmethod
    def from_env(
        cls, environ=None, *, recorder=NULL_RECORDER
    ) -> Optional["FaultPlan"]:
        """Build a plan from ``REPRO_FAULT_PLAN``/``REPRO_FAULT_SEED``.

        Returns ``None`` when the plan variable is unset or empty, so
        callers can write ``plan = FaultPlan.from_env()`` and pass the
        result straight through.
        """
        environ = os.environ if environ is None else environ
        text = environ.get(ENV_PLAN, "").strip()
        if not text:
            return None
        try:
            seed = int(environ.get(ENV_SEED, "0"))
        except ValueError:
            raise FaultPlanError(
                f"{ENV_SEED} must be an integer, "
                f"got {environ.get(ENV_SEED)!r}"
            ) from None
        return cls.parse(text, seed=seed, recorder=recorder)

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any site can still fire."""
        return any(
            spec.probability > 0
            and (spec.max_fires == 0 or self._fired[site] < spec.max_fires)
            for site, spec in self._specs.items()
        )

    def targets(self, *sites: str) -> bool:
        """Whether the plan has a live rule for any of ``sites``."""
        return any(
            site in self._specs and self._specs[site].probability > 0
            for site in sites
        )

    def should_fire(self, site: str) -> bool:
        """One deterministic draw for ``site``; counts checks and fires."""
        spec = self._specs.get(site)
        if spec is None or spec.probability <= 0.0:
            return False
        if spec.max_fires and self._fired[site] >= spec.max_fires:
            return False
        self.recorder.incr(f"faults.checked.{site}")
        if self._rngs[site].random() >= spec.probability:
            return False
        self._fired[site] += 1
        self.recorder.incr(f"faults.fired.{site}")
        return True

    def check(self, site: str) -> None:
        """Raise :class:`InjectedFault` when ``site`` fires."""
        if self.should_fire(site):
            raise InjectedFault(site)

    def maybe_sleep(self, site: str) -> float:
        """Sleep ``delay_ms`` when ``site`` fires; returns seconds slept."""
        if not self.should_fire(site):
            return 0.0
        delay_s = self._specs[site].delay_ms / 1000.0
        if delay_s > 0:
            time.sleep(delay_s)
        return delay_s

    def fired(self, site: str) -> int:
        """How many times ``site`` has fired so far."""
        return self._fired.get(site, 0)

    def snapshot(self) -> Dict[str, dict]:
        """JSON-friendly plan state (spec + fire counts per site)."""
        return {
            site: {
                "probability": spec.probability,
                "delay_ms": spec.delay_ms,
                "max_fires": spec.max_fires,
                "fired": self._fired[site],
            }
            for site, spec in self._specs.items()
        }

    def __repr__(self) -> str:
        rules = ",".join(
            f"{site}:{spec.probability}" for site, spec in self._specs.items()
        )
        return f"FaultPlan({rules or 'inactive'}, seed={self.seed})"


class FaultyIndex:
    """An index proxy injecting ``scan.slow``/``scan.fail`` faults.

    Wraps any SPC index: queries delegate unchanged unless the plan
    fires.  ``scan.slow`` draws before ``scan.fail``, so a plan with
    both can delay *and then* crash the same call.  Diagnostic reads
    (``query_with_stats``, ``stats``) pass through untouched — chaos
    must corrupt answers' *availability*, never the reference values
    tests compare against.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    def _inject(self) -> None:
        self.plan.maybe_sleep("scan.slow")
        self.plan.check("scan.fail")

    def query(self, source, target):
        self._inject()
        return self.inner.query(source, target)

    def query_batch(self, pairs):
        self._inject()
        return self.inner.query_batch(pairs)

    def __getattr__(self, name):
        return getattr(self.inner, name)

"""Cut tree structure and constant-time LCA."""

from repro.tree.cut_tree import CutTree, TreeNode
from repro.tree.lca import LCATable

__all__ = ["CutTree", "LCATable", "TreeNode"]

"""The cut tree (paper Definition 3.2) shared by CTL and CTLS indexes.

A cut tree is a rooted binary tree whose nodes are disjoint vertex sets
covering ``V``; every node is a vertex cut separating its left and right
subtrees (within the subtree-induced subgraph for CTL, globally for
shortest paths in the GSP-cut tree of CTLS).

Vertex ranking (paper §III-B): inside a node, *smaller id = higher
rank*; across nodes, ancestors outrank descendants.  Every vertex ``v``
has an *ancestor vertex list* ``A(v)`` — all vertices of strict ancestor
nodes, plus same-node vertices with id <= v — laid out in a canonical
order (root block first, ascending id within each node).  Two vertices'
lists agree position-by-position on their common prefix, which is what
makes the label arrays of :mod:`repro.labels` directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import IndexBuildError
from repro.tree.lca import LCATable
from repro.types import Vertex


@dataclass
class TreeNode:
    """One node of a cut tree: a set of graph vertices."""

    index: int
    vertices: Tuple[Vertex, ...]  # sorted ascending = highest rank first
    parent: int  # -1 for the root
    children: List[int] = field(default_factory=list)
    depth: int = 0
    #: Total number of ancestor vertices up to and including this node's
    #: block (filled by ``finalize``).
    block_end: int = 0

    @property
    def size(self) -> int:
        """Number of vertices stored in this tree node."""
        return len(self.vertices)

    @property
    def block_start(self) -> int:
        """Offset of this node's label block (``block_end - size``)."""
        return self.block_end - len(self.vertices)


class CutTree:
    """A cut tree under construction and its finalized query structures."""

    def __init__(self) -> None:
        self.nodes: List[TreeNode] = []
        self.node_of_vertex: Dict[Vertex, int] = {}
        self._lca: Optional[LCATable] = None
        #: Position of each vertex inside its node's ascending-id order.
        self._rank_in_node: Dict[Vertex, int] = {}
        # Flat query-time arrays, filled by ``finalize``.
        self._block_start: List[int] = []
        self._block_end: List[int] = []
        self._label_len: Dict[Vertex, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, vertices: Sequence[Vertex], parent: int = -1) -> int:
        """Append a tree node holding ``vertices``; returns its index."""
        if not vertices:
            raise IndexBuildError("a tree node must contain at least one vertex")
        ordered = tuple(sorted(vertices))
        index = len(self.nodes)
        node = TreeNode(index=index, vertices=ordered, parent=parent)
        if parent >= 0:
            parent_node = self.nodes[parent]
            if len(parent_node.children) >= 2:
                raise IndexBuildError(
                    f"node {parent} already has two children (binary tree)"
                )
            parent_node.children.append(index)
            node.depth = parent_node.depth + 1
        self.nodes.append(node)
        for position, v in enumerate(ordered):
            if v in self.node_of_vertex:
                raise IndexBuildError(f"vertex {v} assigned to two tree nodes")
            self.node_of_vertex[v] = index
            self._rank_in_node[v] = position
        return index

    @classmethod
    def from_flat(
        cls,
        parents: Sequence[int],
        node_offsets: Sequence[int],
        flat_vertices: Sequence[Vertex],
    ) -> "CutTree":
        """Rebuild a finalized tree from its flattened form in one pass.

        ``parents[i]`` is node ``i``'s parent (-1 root), and node ``i``
        owns ``flat_vertices[node_offsets[i]:node_offsets[i + 1]]`` in
        ascending-id order.  This is the deserialization fast path (the
        v4 container stores exactly these three arrays): it fuses
        :meth:`add_node` and :meth:`finalize` into one loop and skips
        the construction-time re-sorting and duplicate checks — the
        flattened form was produced *from* a finalized tree, so those
        invariants already hold.  The only structural requirement,
        parents-before-children (guaranteed by :meth:`add_node`'s
        append order), is still enforced.
        """
        if len(node_offsets) != len(parents) + 1:
            raise IndexBuildError(
                f"node offsets length {len(node_offsets)} does not match "
                f"{len(parents)} nodes"
            )
        # The v4 loader hands memoryviews over the mapping; item access
        # on those is several times slower than on lists, and this loop
        # is the hot part of a cold start.
        parents = list(parents)
        node_offsets = list(node_offsets)
        flat_vertices = list(flat_vertices)
        tree = cls()
        nodes = tree.nodes
        node_of = tree.node_of_vertex
        rank_of = tree._rank_in_node
        block_ends: List[int] = []
        for index, parent in enumerate(parents):
            vertices = tuple(
                flat_vertices[node_offsets[index]:node_offsets[index + 1]]
            )
            if not vertices:
                raise IndexBuildError(
                    f"tree node {index} has an empty vertex range"
                )
            node = TreeNode(index=index, vertices=vertices, parent=parent)
            if parent >= 0:
                if parent >= index:
                    raise IndexBuildError(
                        f"node {index} references parent {parent} that does "
                        "not precede it"
                    )
                parent_node = nodes[parent]
                if len(parent_node.children) >= 2:
                    raise IndexBuildError(
                        f"node {parent} already has two children "
                        "(binary tree)"
                    )
                parent_node.children.append(index)
                node.depth = parent_node.depth + 1
                node.block_end = parent_node.block_end + len(vertices)
            else:
                node.block_end = len(vertices)
            nodes.append(node)
            block_ends.append(node.block_end)
        # Per-vertex maps, built in bulk: vertex i of the flat layout
        # lives in the node whose offset range covers i, at rank
        # ``i - node_offsets[node]``, with label length
        # ``block_start[node] + rank + 1``.
        offsets_arr = np.asarray(node_offsets, dtype=np.int64)
        counts = np.diff(offsets_arr)
        node_ids = np.repeat(
            np.arange(len(parents), dtype=np.int64), counts
        )
        ranks = np.arange(len(flat_vertices), dtype=np.int64)
        ranks -= np.repeat(offsets_arr[:-1], counts)
        block_start = np.asarray(block_ends, dtype=np.int64) - counts
        lens = np.repeat(block_start, counts) + ranks + 1
        node_of.update(zip(flat_vertices, node_ids.tolist()))
        rank_of.update(zip(flat_vertices, ranks.tolist()))
        if len(node_of) != len(flat_vertices):
            raise IndexBuildError(
                "flattened tree assigns a vertex to two nodes"
            )
        tree._lca = LCATable(parents)
        tree._block_start = block_start.tolist()
        tree._block_end = block_ends
        tree._label_len = dict(zip(flat_vertices, lens.tolist()))
        return tree

    def to_flat(self) -> Tuple[List[int], List[int], List[Vertex]]:
        """The flattened ``(parents, node_offsets, vertices)`` form.

        The exact inverse of :meth:`from_flat`; the v4 container writes
        these three arrays as aligned binary sections so a reload never
        parses the tree out of JSON.
        """
        parents: List[int] = []
        node_offsets: List[int] = [0]
        flat_vertices: List[Vertex] = []
        for node in self.nodes:
            parents.append(node.parent)
            flat_vertices.extend(node.vertices)
            node_offsets.append(len(flat_vertices))
        return parents, node_offsets, flat_vertices

    def finalize(self) -> None:
        """Compute depths, label-block offsets, and the LCA table."""
        for node in self.nodes:
            if node.parent >= 0:
                parent = self.nodes[node.parent]
                node.depth = parent.depth + 1
                node.block_end = parent.block_end + node.size
            else:
                node.depth = 0
                node.block_end = node.size
        self._lca = LCATable([node.parent for node in self.nodes])
        self._block_start = [node.block_start for node in self.nodes]
        self._block_end = [node.block_end for node in self.nodes]
        self._label_len = {
            v: self._block_start[idx] + self._rank_in_node[v] + 1
            for v, idx in self.node_of_vertex.items()
        }

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of tree nodes."""
        return len(self.nodes)

    @property
    def lca_table(self) -> LCATable:
        """The O(1) LCA table over node indexes (after ``finalize``)."""
        if self._lca is None:
            raise IndexBuildError("CutTree.finalize() has not been called")
        return self._lca

    def lca_index(self, a: int, b: int) -> int:
        """Index of the lowest common ancestor of nodes ``a`` and ``b``."""
        return self.lca_table.lca(a, b)

    @property
    def block_starts(self) -> List[int]:
        """Label-block start offset per node index (after ``finalize``)."""
        return self._block_start

    @property
    def block_ends(self) -> List[int]:
        """Label-block end offset per node index (after ``finalize``)."""
        return self._block_end

    @property
    def num_vertices(self) -> int:
        """Number of graph vertices covered by the tree."""
        return len(self.node_of_vertex)

    @property
    def height(self) -> int:
        """Maximum number of ancestor vertices of any vertex (paper ``h``)."""
        return max((node.block_end for node in self.nodes), default=0)

    @property
    def width(self) -> int:
        """Maximum tree-node size (paper ``w``)."""
        return max((node.size for node in self.nodes), default=0)

    def node(self, index: int) -> TreeNode:
        """The tree node with the given index."""
        return self.nodes[index]

    def node_of(self, v: Vertex) -> TreeNode:
        """The tree node containing graph vertex ``v`` (``X(v)``)."""
        return self.nodes[self.node_of_vertex[v]]

    def rank_in_node(self, v: Vertex) -> int:
        """Position of ``v`` in its node's ascending-id order."""
        return self._rank_in_node[v]

    def label_length(self, v: Vertex) -> int:
        """``|A(v)|`` — number of ancestor vertices of ``v`` (incl. itself)."""
        node = self.node_of(v)
        return node.block_start + self._rank_in_node[v] + 1

    def ancestors(self, index: int) -> Iterator[TreeNode]:
        """Nodes from the root down to ``index`` (inclusive)."""
        chain = []
        at: Optional[int] = index
        while at is not None and at >= 0:
            chain.append(self.nodes[at])
            at = self.nodes[at].parent if self.nodes[at].parent >= 0 else None
        return iter(reversed(chain))

    def ancestor_vertices(self, v: Vertex) -> List[Vertex]:
        """``A(v)`` in canonical label order (root block ... v itself)."""
        result: List[Vertex] = []
        own = self.node_of_vertex[v]
        for node in self.ancestors(own):
            if node.index == own:
                result.extend(node.vertices[: self._rank_in_node[v] + 1])
            else:
                result.extend(node.vertices)
        return result

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lca_node(self, u: Vertex, v: Vertex) -> TreeNode:
        """Lowest common ancestor node of ``X(u)`` and ``X(v)``."""
        if self._lca is None:
            raise IndexBuildError("CutTree.finalize() has not been called")
        a = self.node_of_vertex[u]
        b = self.node_of_vertex[v]
        return self.nodes[self._lca.lca(a, b)]

    def common_prefix_length(self, u: Vertex, v: Vertex) -> int:
        """Length of the shared prefix of ``A(u)`` and ``A(v)``.

        This is exactly the number of label positions CTL-Query scans:
        all vertices of common ancestor nodes, truncated within a shared
        node to ids ``<= min(u, v)``.
        """
        node_u = self.node_of_vertex[u]
        node_v = self.node_of_vertex[v]
        label_len = self._label_len
        if node_u == node_v:
            len_u = label_len[u]
            len_v = label_len[v]
            return len_u if len_u < len_v else len_v
        lca_index = self._lca.lca(node_u, node_v)
        if lca_index == node_u:
            return label_len[u]
        if lca_index == node_v:
            return label_len[v]
        return self._block_end[lca_index]

    def lca_block_range(self, u: Vertex, v: Vertex) -> "tuple[int, int]":
        """Label positions ``[start, end)`` of the LCA node's block.

        The range CTLS-Query scans: the LCA node's whole block, truncated
        at a query vertex's own position when its node *is* the LCA.
        """
        node_u = self.node_of_vertex[u]
        node_v = self.node_of_vertex[v]
        label_len = self._label_len
        if node_u == node_v:
            len_u = label_len[u]
            len_v = label_len[v]
            end = len_u if len_u < len_v else len_v
            return self._block_start[node_u], end
        lca_index = self._lca.lca(node_u, node_v)
        if lca_index == node_u:
            return self._block_start[lca_index], label_len[u]
        if lca_index == node_v:
            return self._block_start[lca_index], label_len[v]
        return self._block_start[lca_index], self._block_end[lca_index]

    def validate(self) -> None:
        """Cheap structural sanity checks; raises ``IndexBuildError``."""
        for node in self.nodes:
            if len(node.children) > 2:
                raise IndexBuildError(f"node {node.index} has >2 children")
            for child in node.children:
                if not 0 <= child < len(self.nodes):
                    raise IndexBuildError(
                        f"node {node.index} references unknown child {child}"
                    )
                if self.nodes[child].parent != node.index:
                    raise IndexBuildError(
                        f"child {child} does not point back to {node.index}"
                    )

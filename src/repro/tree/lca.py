"""Constant-time lowest common ancestor queries.

Euler tour + sparse-table range-minimum over depths: ``O(n log n)``
preprocessing, ``O(1)`` per query.  The paper's Lemma 3.4 assumes O(1)
LCA (via bit tricks in [8]); this module provides the classic
equivalent.  The sparse table is built with numpy but queried through
plain Python lists — per-query numpy scalar indexing would cost more
than the whole label scan it serves.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class LCATable:
    """LCA over a static rooted tree (or forest) given as a parent array.

    Args:
        parents: ``parents[i]`` is the parent index of node ``i``; roots
            use ``-1``.  Any node order is accepted.

    For forests, queries across different trees return a root, which is
    not a meaningful ancestor — callers are expected to query within
    one tree (all index trees here are single-rooted).
    """

    def __init__(self, parents: Sequence[int]) -> None:
        n = len(parents)
        children: List[List[int]] = [[] for _ in range(n)]
        roots: List[int] = []
        for i, p in enumerate(parents):
            if p < 0:
                roots.append(i)
            else:
                children[p].append(i)

        self.depth = [0] * n
        euler: List[int] = []
        first = [-1] * n
        # Iterative Euler tour (recursion would overflow on path-like trees).
        for root in roots:
            stack = [(root, iter(children[root]))]
            self.depth[root] = 0
            first[root] = len(euler)
            euler.append(root)
            while stack:
                node, it = stack[-1]
                child = next(it, None)
                if child is None:
                    stack.pop()
                    if stack:
                        euler.append(stack[-1][0])
                    continue
                self.depth[child] = self.depth[node] + 1
                first[child] = len(euler)
                euler.append(child)
                stack.append((child, iter(children[child])))

        self._first = first
        self._euler = euler
        depths = np.asarray([self.depth[v] for v in euler], dtype=np.int64)

        # Sparse table of (depth << 32 | euler position): np.minimum on
        # the packed value picks the shallower node.
        m = len(euler)
        levels = max(1, m.bit_length())
        packed = depths << 32 | np.arange(m, dtype=np.int64)
        table_np = [packed]
        for k in range(1, levels):
            span = 1 << k
            half = span >> 1
            if span > m:
                break
            prev = table_np[k - 1]
            table_np.append(
                np.minimum(prev[: m - span + 1], prev[half: m - span + 1 + half])
            )
        # Python lists for fast scalar access at query time.
        self._table: List[List[int]] = [row.tolist() for row in table_np]

    def lca(self, a: int, b: int) -> int:
        """The lowest common ancestor of nodes ``a`` and ``b``."""
        if a == b:
            return a
        i = self._first[a]
        j = self._first[b]
        if i > j:
            i, j = j, i
        k = (j - i + 1).bit_length() - 1
        row = self._table[k]
        left = row[i]
        right = row[j - (1 << k) + 1]
        best = left if left < right else right
        return self._euler[best & 0xFFFFFFFF]

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """Whether ``ancestor`` lies on the root path of ``node``."""
        return self.lca(ancestor, node) == ancestor

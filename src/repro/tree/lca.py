"""Constant-time lowest common ancestor queries.

Euler tour + sparse-table range-minimum over depths: ``O(n log n)``
preprocessing, ``O(1)`` per query.  The paper's Lemma 3.4 assumes O(1)
LCA (via bit tricks in [8]); this module provides the classic
equivalent.  The sparse table is built with numpy but queried through
plain Python lists — per-query numpy scalar indexing would cost more
than the whole label scan it serves.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class LCATable:
    """LCA over a static rooted tree (or forest) given as a parent array.

    Args:
        parents: ``parents[i]`` is the parent index of node ``i``; roots
            use ``-1``.  Any node order is accepted.

    For forests, queries across different trees return a root, which is
    not a meaningful ancestor — callers are expected to query within
    one tree (all index trees here are single-rooted).
    """

    def __init__(self, parents: Sequence[int]) -> None:
        n = len(parents)
        children: List[List[int]] = [[] for _ in range(n)]
        roots: List[int] = []
        for i, p in enumerate(parents):
            if p < 0:
                roots.append(i)
            else:
                children[p].append(i)

        self.depth = [0] * n
        depth = self.depth
        euler: List[int] = []
        append = euler.append
        first = [-1] * n
        # Iterative Euler tour (recursion would overflow on path-like
        # trees).  A negative stack entry ``~p`` is a return marker:
        # popping it re-appends ``p`` after one of its child subtrees.
        for root in roots:
            stack = [root]
            push = stack.append
            pop = stack.pop
            while stack:
                node = pop()
                if node < 0:
                    append(~node)
                    continue
                first[node] = len(euler)
                append(node)
                kids = children[node]
                if kids:
                    d = depth[node] + 1
                    for child in reversed(kids):
                        depth[child] = d
                        push(~node)
                        push(child)

        self._first = first
        self._euler = euler
        depths = np.asarray(depth, dtype=np.int64)[
            np.asarray(euler, dtype=np.int64)
        ]

        # Sparse table of (depth << 32 | euler position): np.minimum on
        # the packed value picks the shallower node.
        m = len(euler)
        levels = max(1, m.bit_length())
        packed = depths << 32 | np.arange(m, dtype=np.int64)
        table_np = [packed]
        for k in range(1, levels):
            span = 1 << k
            half = span >> 1
            if span > m:
                break
            prev = table_np[k - 1]
            table_np.append(
                np.minimum(prev[: m - span + 1], prev[half: m - span + 1 + half])
            )
        # Python lists for fast scalar access at query time.
        self._table: List[List[int]] = [row.tolist() for row in table_np]

    def lca(self, a: int, b: int) -> int:
        """The lowest common ancestor of nodes ``a`` and ``b``."""
        if a == b:
            return a
        i = self._first[a]
        j = self._first[b]
        if i > j:
            i, j = j, i
        k = (j - i + 1).bit_length() - 1
        row = self._table[k]
        left = row[i]
        right = row[j - (1 << k) + 1]
        best = left if left < right else right
        return self._euler[best & 0xFFFFFFFF]

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """Whether ``ancestor`` lies on the root path of ``node``."""
        return self.lca(ancestor, node) == ancestor

"""Setup shim for environments without the `wheel` package.

Metadata lives in pyproject.toml; this file only enables legacy
`pip install -e .` (setup.py develop) where PEP 660 builds are
unavailable offline.
"""
from setuptools import setup

setup()

"""Serve an SPC index and replay a workload against it.

Run with::

    python examples/serve_workload.py [num_vertices]

The script builds a small synthetic road network, serves its index
with :class:`repro.serve.ServerThread`, and replays a random query
workload through the :mod:`repro.serve.client` load generator twice —
once with micro-batching coalescing enabled, once without — printing
the QPS/latency report for each run plus the serving metrics that
``GET /metrics`` exposes (cache hit rate, batch sizes, shed counts).

The same comparison, tuned as a pass/fail benchmark, lives in
``benchmarks/bench_serve.py``; the serving layer itself is documented
in ``docs/serving.md``.
"""

from __future__ import annotations

import random
import sys

from repro.baselines.tl import TLIndex
from repro.bench.report import render_load_report
from repro.graph.generators import road_network
from repro.serve import ServeConfig, ServerThread, replay


def main() -> None:
    num_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    graph = road_network(num_vertices, seed=7)
    print(f"building TL index over {graph!r} ...")
    index = TLIndex.build(graph)

    rng = random.Random(42)
    vertices = list(graph.vertices())
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(1000)
    ]

    for coalesce in (True, False):
        config = ServeConfig(port=0, coalesce=coalesce)
        mode = "coalesced" if coalesce else "uncoalesced"
        with ServerThread(index, config) as (host, port):
            report = replay(
                host, port, pairs, concurrency=8, pipeline=4
            )
        print(f"\n== {mode} ==")
        print(render_load_report(report))

    # One more short run to show the /metrics counters a live server
    # exposes (the cache absorbs the second repeat of the workload).
    thread = ServerThread(index, ServeConfig(port=0))
    with thread as (host, port):
        replay(host, port, pairs[:200], concurrency=4, repeats=2)
        snapshot = thread.server.recorder.metrics_snapshot()
    counters = snapshot.get("counters", {})
    print("\n== serving metrics (GET /metrics) ==")
    for name in sorted(counters):
        if name.startswith("serve."):
            print(f"  {name:<32} {counters[name]}")


if __name__ == "__main__":
    main()

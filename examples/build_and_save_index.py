"""Offline pipeline: load a network, build an index once, reuse it.

Run with::

    python examples/build_and_save_index.py [path/to/network.gr]

Without an argument, a synthetic network is written to a temporary
DIMACS file first — demonstrating the full production loop: DIMACS in,
JSON index out, instant reload for query serving.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro import CTLSIndex, load_index, road_network, save_index
from repro.bench.workloads import random_pairs
from repro.graph.io import read_dimacs, write_dimacs


def main() -> None:
    if len(sys.argv) > 1:
        network_path = Path(sys.argv[1])
    else:
        network_path = Path(tempfile.gettempdir()) / "repro_demo.gr"
        print(f"No input given; writing a synthetic network to {network_path}")
        write_dimacs(road_network(2500, seed=41), network_path)

    print(f"Loading {network_path} ...")
    graph = read_dimacs(network_path)
    print(f"  {graph!r}")

    print("Building the CTLS-Index (one-off cost) ...")
    started = time.perf_counter()
    index = CTLSIndex.build(graph)
    print(f"  built in {time.perf_counter() - started:.2f}s")

    index_path = network_path.with_suffix(".spc-index.json")
    save_index(index, index_path)
    size_mb = index_path.stat().st_size / 1e6
    print(f"Saved to {index_path} ({size_mb:.2f} MB on disk)")

    print("Reloading and serving queries ...")
    started = time.perf_counter()
    served = load_index(index_path)
    print(f"  loaded in {time.perf_counter() - started:.2f}s")

    pairs = random_pairs(graph, 20000, seed=9)
    started = time.perf_counter()
    for s, t in pairs:
        served.query(s, t)
    elapsed = time.perf_counter() - started
    print(
        f"  {len(pairs)} queries in {elapsed:.2f}s "
        f"({elapsed / len(pairs) * 1e6:.2f} us/query)"
    )


if __name__ == "__main__":
    main()

"""Betweenness centrality of a road network via SPC queries.

Run with::

    python examples/betweenness_analysis.py

The paper's flagship application (§I): betweenness centrality sums, for
every vertex pair, the fraction of shortest paths through a vertex —
``spc_u(s,t) / spc(s,t)``.  A counting index turns each term into three
O(w) lookups.  This example estimates centrality from sampled pairs
with a CTLS-Index and compares the resulting ranking against exact
Brandes.
"""

from __future__ import annotations

import time

from repro import CTLSIndex, road_network
from repro.apps.betweenness import betweenness_exact, betweenness_sampled


def main() -> None:
    graph = road_network(800, seed=13)
    print(f"Road network: {graph!r}")

    print("\nExact betweenness (Brandes) ...")
    started = time.perf_counter()
    exact = betweenness_exact(graph)
    brandes_seconds = time.perf_counter() - started
    top_exact = sorted(exact, key=exact.get, reverse=True)[:10]
    print(f"  took {brandes_seconds:.2f}s")
    print(f"  top-10 vertices: {top_exact}")

    print("\nIndex-accelerated estimate (CTLS-Index, 2000 sampled pairs) ...")
    started = time.perf_counter()
    index = CTLSIndex.build(graph)
    build_seconds = time.perf_counter() - started

    vertices = sorted(graph.vertices())
    started = time.perf_counter()
    estimated = betweenness_sampled(
        index,
        vertices=top_exact,          # score the interesting candidates
        num_samples=2000,
        population=vertices,
        seed=3,
    )
    estimate_seconds = time.perf_counter() - started
    print(f"  index build {build_seconds:.2f}s, estimation {estimate_seconds:.2f}s")

    print("\n  vertex   exact (pairs)   estimated (avg dependency)")
    for v in top_exact:
        print(f"  {v:6d}   {exact[v]:13.1f}   {estimated[v]:.4f}")

    # Rank agreement: the exact top vertex should rank near the top of
    # the estimates as well.
    best_estimated = max(estimated, key=estimated.get)
    print(
        f"\nExact #1 vertex: {top_exact[0]}; estimated #1 among candidates: "
        f"{best_estimated}"
    )


if __name__ == "__main__":
    main()

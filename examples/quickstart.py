"""Quickstart: build a CTLS-Index and answer counting queries.

Run with::

    python examples/quickstart.py

Builds a synthetic road network, constructs all three indexes, and
cross-checks a few shortest-path-counting queries against an online
Dijkstra — the 30-second tour of the library.
"""

from __future__ import annotations

from repro import (
    CTLIndex,
    CTLSIndex,
    OnlineSPC,
    TLIndex,
    road_network,
)
from repro.bench.workloads import random_pairs


def main() -> None:
    print("Generating a ~2000-vertex road network ...")
    graph = road_network(2000, seed=7)
    print(f"  {graph!r}")

    print("\nBuilding indexes ...")
    indexes = {
        "TL-Index   (baseline)": TLIndex.build(graph),
        "CTL-Index  (paper §III)": CTLIndex.build(graph),
        "CTLS-Index (paper §IV)": CTLSIndex.build(graph),
    }
    for name, index in indexes.items():
        st = index.stats()
        print(
            f"  {name}: built in {index.build_stats.seconds:.2f}s, "
            f"h={st.height}, w={st.width}, "
            f"size={st.size_bytes / 1e6:.2f} MB"
        )

    online = OnlineSPC.build(graph)
    print("\nAnswering queries (distance, number of shortest paths):")
    for s, t in random_pairs(graph, 5, seed=1):
        expected = online.query(s, t)
        print(f"  Q({s}, {t}) = ({expected.distance}, {expected.count})")
        for name, index in indexes.items():
            got = index.query(s, t)
            marker = "ok" if tuple(got) == tuple(expected) else "MISMATCH"
            print(f"    {name.split()[0]:10s} -> {tuple(got)}  [{marker}]")

    ctls = indexes["CTLS-Index (paper §IV)"]
    s, t = random_pairs(graph, 1, seed=2)[0]
    result, visited = ctls.query_with_stats(s, t)
    print(
        f"\nCTLS-Query({s}, {t}) visited {visited} labels "
        f"(tree width bound: {ctls.stats().width})."
    )


if __name__ == "__main__":
    main()

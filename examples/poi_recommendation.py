"""Top-k POI recommendation with shortest-path-count tie-breaking.

Run with::

    python examples/poi_recommendation.py

The paper's motivating scenario (§I): a ride-hailing service ranks
nearby pick-up points.  When two candidates are equally close, users
prefer the one reachable by more shortest routes (more flexibility
under congestion).  The shortest path count is exactly that signal,
and a CTLS-Index serves it in microseconds.
"""

from __future__ import annotations

import random

from repro import CTLSIndex, road_network
from repro.apps.poi import recommend_pois


def main() -> None:
    graph = road_network(3000, seed=23)
    print(f"City fabric: {graph!r}")

    index = CTLSIndex.build(graph)
    print(f"CTLS-Index built in {index.build_stats.seconds:.2f}s")

    rng = random.Random(5)
    vertices = sorted(graph.vertices())
    user = rng.choice(vertices)
    pois = rng.sample(vertices, 40)

    print(f"\nUser location: vertex {user}; {len(pois)} candidate POIs.")

    print("\nPure nearest-k (no tie-breaking information):")
    plain = recommend_pois(index, user, pois, k=5)
    for rank, rec in enumerate(plain, start=1):
        print(
            f"  {rank}. vertex {rec.vertex:6d}  distance {rec.distance:7d}"
            f"  routes {rec.route_count}"
        )

    print("\nWith 10% distance tolerance, preferring route flexibility:")
    flexible = recommend_pois(index, user, pois, k=5, tolerance=0.10)
    for rank, rec in enumerate(flexible, start=1):
        print(
            f"  {rank}. vertex {rec.vertex:6d}  distance {rec.distance:7d}"
            f"  routes {rec.route_count}"
        )

    moved = [r.vertex for r in flexible] != [r.vertex for r in plain]
    print(
        "\nRoute-count tie-breaking changed the ranking."
        if moved
        else "\nRanking unchanged (no near-ties among these candidates)."
    )


if __name__ == "__main__":
    main()

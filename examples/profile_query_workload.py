"""Profile a query workload end to end with the ``repro-spc`` CLI.

Run with::

    python examples/profile_query_workload.py [num_vertices]

The script drives the same code paths as the shell loop::

    repro-spc generate road 2000 network.gr --seed 7
    repro-spc build network.gr index.json --trace build-trace.json
    repro-spc profile index.json pairs.txt --repeats 3

and finishes by loading the emitted Chrome trace back in and printing
where the build time went — open the trace file in
https://ui.perfetto.dev to explore it interactively.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.bench.workloads import random_pairs
from repro.cli import main as repro_spc
from repro.graph.io import read_dimacs
from repro.obs import span_summary, validate_chrome_trace
from repro.obs.tracing import SpanEvent


def main() -> None:
    num_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    workdir = Path(tempfile.mkdtemp(prefix="repro_profile_"))
    network = workdir / "network.gr"
    index = workdir / "index.json"
    pairs_file = workdir / "pairs.txt"
    trace_file = workdir / "build-trace.json"

    print(f"Working in {workdir}")
    assert repro_spc(
        ["generate", "road", str(num_vertices), str(network), "--seed", "7"]
    ) == 0

    print("\n== repro-spc build --trace ==")
    assert repro_spc(
        ["build", str(network), str(index), "--trace", str(trace_file)]
    ) == 0

    graph = read_dimacs(network)
    pairs = random_pairs(graph, 500, seed=9)
    pairs_file.write_text(
        "".join(f"{s} {t}\n" for s, t in pairs)
    )

    print("\n== repro-spc profile ==")
    assert repro_spc(
        ["profile", str(index), str(pairs_file), "--repeats", "3"]
    ) == 0

    print("\n== build trace breakdown ==")
    payload = json.loads(trace_file.read_text())
    problems = validate_chrome_trace(payload)
    assert not problems, problems
    events = [
        SpanEvent(e["name"], e["ts"] / 1e6, e["dur"] / 1e6, e.get("args", {}))
        for e in payload["traceEvents"]
    ]
    for name, entry in span_summary(events).items():
        print(
            f"  {name:<28} x{entry['count']:<5} "
            f"{entry['total_seconds'] * 1e3:9.1f} ms total"
        )
    print(f"\nOpen {trace_file} in https://ui.perfetto.dev to drill in.")


if __name__ == "__main__":
    main()

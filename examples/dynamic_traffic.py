"""Live traffic: maintain a counting index under edge-weight updates.

Run with::

    python examples/dynamic_traffic.py

Road topology is static but travel times change constantly (paper
§IV-D.2).  ``DynamicCTL`` repairs only the affected label blocks — the
common ancestors of the updated edge's endpoints — instead of
rebuilding, and stays exact for both weight increases (congestion) and
decreases (clearing).
"""

from __future__ import annotations

import random
import time

from repro import DynamicCTL, road_network
from repro.core.ctl import CTLIndex
from repro.search.pairwise import spc_query


def main() -> None:
    graph = road_network(1500, seed=31)
    print(f"Road network: {graph!r}")

    started = time.perf_counter()
    dynamic = DynamicCTL(graph, seed=1)
    print(f"Initial CTL-Index built in {time.perf_counter() - started:.2f}s")
    total_nodes = dynamic.index.tree.num_nodes

    rng = random.Random(17)
    edges = sorted((u, v) for u, v, _w, _c in graph.edges())
    vertices = sorted(graph.vertices())

    print("\nSimulating 8 traffic events ...")
    repair_seconds = []
    for step in range(1, 9):
        u, v = edges[rng.randrange(len(edges))]
        old = dynamic.graph.weight(u, v)
        congested = step % 2 == 1
        new = old * 3 if congested else max(1, old // 2)
        started = time.perf_counter()
        dynamic.update_weight(u, v, new)
        elapsed = time.perf_counter() - started
        repair_seconds.append(elapsed)
        kind = "congestion" if congested else "clearing  "
        print(
            f"  [{step}] {kind} on edge ({u}, {v}): {old} -> {new}; "
            f"repaired {dynamic.last_repaired_nodes}/{total_nodes} tree "
            f"nodes in {elapsed * 1000:.1f} ms"
        )

        # Spot-check exactness after every update.
        s, t = rng.choice(vertices), rng.choice(vertices)
        got = dynamic.query(s, t)
        want = spc_query(dynamic.graph, s, t)
        assert tuple(got) == tuple(want), (s, t)

    started = time.perf_counter()
    CTLIndex.build(dynamic.graph, seed=1)
    rebuild = time.perf_counter() - started
    average_repair = sum(repair_seconds) / len(repair_seconds)
    print(
        f"\nAverage repair: {average_repair * 1000:.1f} ms vs full rebuild "
        f"{rebuild * 1000:.1f} ms ({rebuild / average_repair:.1f}x faster)."
    )


if __name__ == "__main__":
    main()
